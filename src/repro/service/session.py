"""Compile-once / query-many estimation sessions.

Every estimation entry point of this repo used to re-thread the same
plumbing per call: characterize (or fetch) a library, compile the circuit
against it, pick an engine mode, run.  :class:`EstimationSession` extracts
that boundary into one long-lived object — the shape a serving layer needs:

* a **compiled-circuit cache** (:class:`repro.engine.compile.CompileCache`,
  bounded LRU with hit/miss/eviction counters) so repeated queries against
  the same circuit skip straight to the array passes;
* a **fingerprint-keyed library registry**, optionally backed by an
  on-disk :class:`repro.gates.cache.LibraryStore` so a fleet of worker
  processes shares one warm characterization cache;
* a **coalescing request front-end** (:mod:`repro.service.coalesce`):
  concurrent ``totals``/``campaign`` calls from many threads merge into
  single batched :func:`~repro.engine.campaign.run_totals` /
  :func:`~repro.engine.campaign.run_compiled` engine passes inside a small
  batch window, plus streaming iteration for campaign-sized results.

**Invariance contract.**  Coalescing and session routing never change
numbers: every engine pass computes vector columns independently
(batch-composition invariance, pinned by the engine test suite), so a
coalesced batch's per-request slices are bitwise identical to the same
requests evaluated serially one at a time, and a cache hit returns the
exact object a cold compile would rebuild.  ``tests/test_service.py``
asserts both under real thread concurrency.

The classic entry points (:func:`repro.core.vectors.run_vector_campaign`,
:func:`repro.core.vectors.minimum_leakage_vector`,
:func:`repro.optimize.minimize_leakage`, the experiment drivers) are thin
adapters over a session: they accept ``session=`` and otherwise route
through the process-default session of :func:`default_session`, whose
compile cache is the same object legacy direct
:func:`~repro.engine.compile.compile_circuit` calls hit.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Iterator, Mapping

import numpy as np

from repro.circuit.netlist import Circuit
from repro.engine.campaign import (
    BatchedCampaignRun,
    DEFAULT_CHUNK_SIZE,
    run_compiled,
    run_totals,
)
from repro.engine.compile import (
    CompileCache,
    CompiledCircuit,
    default_compile_cache,
)
from repro.gates.cache import LibraryStore, characterization_fingerprint
from repro.gates.characterize import CharacterizationOptions, GateLibrary
from repro.resilience.checkpoint import checkpoint_fingerprint
from repro.resilience.errors import DeadlineExceeded, ServiceOverloaded
from repro.service.coalesce import (
    DEFAULT_BATCH_WINDOW_S,
    DEFAULT_MAX_BATCH_VECTORS,
    DEFAULT_MAX_IN_FLIGHT,
    RequestCoalescer,
)
from repro.utils.rng import RngLike, rng_state_token, spawn_streams
from repro.variation.montecarlo import run_loaded_inverter_monte_carlo
from repro.variation.spec import VariationSpec
from repro.variation.statistics import (
    PercentileEstimate,
    YieldEstimate,
    equivalent_mc_samples,
    percentile_leakage,
    yield_fraction,
)


def _slice_run(run: BatchedCampaignRun, lo: int, hi: int) -> BatchedCampaignRun:
    """Return vectors ``[lo, hi)`` of a batched run as a standalone run.

    Every array of a :class:`BatchedCampaignRun` is keyed by vector column
    and every column is computed independently, so slicing is exact: the
    returned run is bitwise identical to evaluating those vectors alone.
    ``runtime_s`` (metadata, not numerics) carries the batch's wall clock
    pro-rated by vector share, so per-request runtimes still sum to the
    batch total.
    """
    count = max(run.vector_count, 1)
    return BatchedCampaignRun(
        compiled=run.compiled,
        method=run.method,
        assignments=run.assignments[lo:hi],
        per_gate=run.per_gate[:, lo:hi].copy(),
        vec_index=run.vec_index[:, lo:hi].copy(),
        input_loading=run.input_loading[:, lo:hi].copy(),
        output_loading=run.output_loading[:, lo:hi].copy(),
        runtime_s=run.runtime_s * (hi - lo) / count,
    )


#: Leakage components a statistical-leakage population records.
_STATISTICAL_COMPONENTS = ("subthreshold", "gate", "btbt", "total")


@dataclass(frozen=True)
class StatisticalLeakageEstimate:
    """Answer of :meth:`EstimationSession.percentile_leakage`.

    ``percentile`` is the requested population percentile with its
    bootstrap confidence interval; ``yield_estimate`` is present when a
    leakage ``limit`` was passed.  ``equivalent_mc_samples`` reports how
    many *plain Monte-Carlo* samples the variance-reduced population is
    worth for this statistic (measured from replicate scatter — ~ the
    pooled count for ``sampler="mc"``, substantially more for ``"qmc"``).
    ``population_cached`` tells whether the query reused a pooled
    population already computed by this session (same settings + seed) —
    the compile-once / query-many shape: new percentiles against a cached
    population cost bootstrap arithmetic, not circuit solves.
    """

    percentile: PercentileEstimate
    yield_estimate: YieldEstimate | None
    equivalent_mc_samples: float
    sample_count: int
    replicates: int
    sampler: str
    component: str
    loaded: bool
    population_cached: bool


class EstimationSession:
    """A long-lived compile-once / query-many estimation service core.

    Parameters
    ----------
    store:
        Optional on-disk characterization store — a
        :class:`~repro.gates.cache.LibraryStore` or a directory path.
        Libraries created through :meth:`library` are warmed from it and
        published back after characterization grows them.
    compile_cache:
        The compiled-circuit LRU this session owns.  Default: a fresh
        private :class:`~repro.engine.compile.CompileCache` (isolated
        statistics); :func:`default_session` instead shares the
        process-default cache with direct ``compile_circuit`` callers.
    batch_window_s / max_batch_vectors:
        Coalescing knobs (see :class:`~repro.service.coalesce.RequestCoalescer`):
        how long a request waits for concurrent company, and the vector
        count that flushes a batch early.
    max_in_flight:
        Admission bound of the coalescer: requests admitted but not yet
        complete.  Beyond it ``totals``/``campaign`` raise
        :class:`~repro.resilience.errors.ServiceOverloaded` (load
        shedding); ``None`` disables the bound.
    lint:
        Netlist pre-flight policy applied when a circuit is first compiled
        (cache hits return the already-linted instance).

    Thread safety: ``totals``/``campaign``/``compiled``/``library`` may be
    called from any number of threads; compiles and library registration
    are serialized, engine passes run outside the session lock.

    Graceful degradation: when a *coalesced* evaluation fails for any
    reason other than the caller's own deadline or load shedding, the
    request falls back to a direct serial evaluation of its own payload
    (counted in ``stats()["session"]["degraded_requests"]``) — a poisoned
    batch-mate can fail its own request, never an innocent one.
    """

    def __init__(
        self,
        store: LibraryStore | str | Path | None = None,
        compile_cache: CompileCache | None = None,
        batch_window_s: float = DEFAULT_BATCH_WINDOW_S,
        max_batch_vectors: int = DEFAULT_MAX_BATCH_VECTORS,
        max_in_flight: int | None = DEFAULT_MAX_IN_FLIGHT,
        lint: str = "raise",
    ) -> None:
        if store is not None and not isinstance(store, LibraryStore):
            store = LibraryStore(store)
        self.store: LibraryStore | None = store
        self.compile_cache = compile_cache or CompileCache()
        self.lint = lint
        self._coalescer = RequestCoalescer(
            window_s=batch_window_s,
            max_batch_vectors=max_batch_vectors,
            max_in_flight=max_in_flight,
        )
        self._lock = threading.Lock()
        self._libraries: dict[str, GateLibrary] = {}
        self._library_hits = 0
        self._library_misses = 0
        self._requests = 0
        self._degraded_requests = 0
        #: Pooled variation populations keyed by settings fingerprint.
        self._populations: dict[str, dict[tuple[str, bool], list[np.ndarray]]] = {}
        self._population_hits = 0
        self._population_misses = 0

    # ------------------------------------------------------------------ #
    # characterized-library registry
    # ------------------------------------------------------------------ #
    def library(
        self,
        technology: Any,
        options: CharacterizationOptions | None = None,
        temperature_k: float | None = None,
    ) -> GateLibrary:
        """Return the session's library for these characterization settings.

        Keyed by the SHA-256 settings fingerprint (full technology tree +
        options + temperature), so two figures asking for the same
        settings share one characterized library — and, with a backing
        :class:`LibraryStore`, one warm on-disk cache across processes.
        """
        options = options or CharacterizationOptions()
        library = GateLibrary(technology, temperature_k, options)
        fingerprint = characterization_fingerprint(
            technology, options, library.temperature_k
        )
        with self._lock:
            cached = self._libraries.get(fingerprint)
            if cached is not None:
                self._library_hits += 1
                return cached
            self._library_misses += 1
            if self.store is not None:
                self.store.load(library)
            self._libraries[fingerprint] = library
            return library

    def register_library(self, library: GateLibrary) -> GateLibrary:
        """Adopt a pre-built library; return the session's canonical instance.

        If a library with the same settings fingerprint is already
        registered, that instance is returned (its characterization cache
        is the warmer one); otherwise ``library`` is registered as-is —
        warmed from the backing store when one is configured.
        """
        fingerprint = characterization_fingerprint(
            library.technology,
            library.characterizer.options,
            library.temperature_k,
        )
        with self._lock:
            cached = self._libraries.get(fingerprint)
            if cached is not None:
                self._library_hits += 1
                return cached
            self._library_misses += 1
            if self.store is not None:
                self.store.load(library)
            self._libraries[fingerprint] = library
            return library

    def publish_libraries(self) -> int:
        """Publish every registered library to the backing store.

        Returns the total record count written (0 without a store or when
        nothing grew).  Call at natural checkpoints — end of a warm-up,
        session shutdown — so other workers inherit the characterization.
        """
        if self.store is None:
            return 0
        with self._lock:
            libraries = list(self._libraries.values())
        return sum(self.store.publish(library) for library in libraries)

    # ------------------------------------------------------------------ #
    # compiled-circuit cache
    # ------------------------------------------------------------------ #
    def compiled(self, circuit: Circuit, library: GateLibrary) -> CompiledCircuit:
        """Return the (cached) compile of ``circuit`` against ``library``."""
        return self.compile_cache.get_or_compile(circuit, library, lint=self.lint)

    def warm_up(
        self, circuits: Iterable[Circuit], library: GateLibrary
    ) -> list[CompiledCircuit]:
        """Compile every circuit now (characterizing as needed); return them.

        The explicit warm-up path of a serving deployment: pay
        characterization and compilation before traffic arrives, then
        publish the grown library to the store for the rest of the fleet.
        """
        compiled = [self.compiled(circuit, library) for circuit in circuits]
        self.publish_libraries()
        return compiled

    # ------------------------------------------------------------------ #
    # request front-end
    # ------------------------------------------------------------------ #
    def totals(
        self,
        circuit: Circuit,
        library: GateLibrary,
        vectors: Iterable[Mapping[str, int]] | np.ndarray,
        include_loading: bool = True,
        coalesce: bool = True,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        deadline_s: float | None = None,
    ) -> np.ndarray:
        """Return the total circuit leakage (A) per vector.

        ``vectors`` is either an iterable of primary-input assignments or
        an already-packed ``(n_primary_inputs, n_vectors)`` 0/1 bit matrix
        in ``circuit.primary_inputs`` row order.  With ``coalesce=True``
        (default) the request may merge with concurrent ``totals`` requests
        against the same compiled circuit into one engine pass — results
        are bitwise identical either way.  ``deadline_s`` bounds this
        caller's wait; expiry raises
        :class:`~repro.resilience.errors.DeadlineExceeded` without
        disturbing the batch.
        """
        compiled = self.compiled(circuit, library)
        if isinstance(vectors, np.ndarray):
            pi_bits = np.ascontiguousarray(vectors, dtype=np.uint8)
        else:
            pi_bits = compiled.validate_assignments([dict(v) for v in vectors])
        self._count_request()

        def run_direct() -> np.ndarray:
            return run_totals(
                compiled, pi_bits, include_loading=include_loading,
                chunk_size=chunk_size,
            )

        if not coalesce or pi_bits.shape[1] == 0:
            return run_direct()

        def run_batch(payloads: list[np.ndarray]) -> list[np.ndarray]:
            stacked = np.concatenate(payloads, axis=1)
            batch_totals = run_totals(
                compiled, stacked, include_loading=include_loading,
                chunk_size=chunk_size,
            )
            results: list[np.ndarray] = []
            lo = 0
            for payload in payloads:
                hi = lo + payload.shape[1]
                results.append(batch_totals[lo:hi].copy())
                lo = hi
            return results

        key = (id(compiled), bool(include_loading), "totals")
        result = self._submit_degradable(
            key, pi_bits, pi_bits.shape[1], run_batch, deadline_s, run_direct
        )
        assert isinstance(result, np.ndarray)
        return result

    def campaign(
        self,
        circuit: Circuit,
        library: GateLibrary,
        vectors: Iterable[Mapping[str, int]],
        include_loading: bool = True,
        coalesce: bool = True,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        deadline_s: float | None = None,
    ) -> BatchedCampaignRun:
        """Run a full campaign (per-gate arrays, lazy reports) over ``vectors``.

        Like :meth:`totals` but answering with the complete
        :class:`~repro.engine.campaign.BatchedCampaignRun`.  Coalesced
        campaign requests merge into one :func:`run_compiled` pass and are
        split back by vector columns — bitwise identical to running alone.
        ``deadline_s`` bounds this caller's wait exactly as in
        :meth:`totals`.
        """
        assignments = [dict(v) for v in vectors]
        compiled = self.compiled(circuit, library)
        self._count_request()

        def run_direct() -> BatchedCampaignRun:
            return run_compiled(
                compiled, assignments, include_loading=include_loading,
                chunk_size=chunk_size,
            )

        if not coalesce or not assignments:
            return run_direct()

        def run_batch(
            payloads: list[list[dict[str, int]]],
        ) -> list[BatchedCampaignRun]:
            merged = [vector for payload in payloads for vector in payload]
            run = run_compiled(
                compiled, merged, include_loading=include_loading,
                chunk_size=chunk_size,
            )
            results: list[BatchedCampaignRun] = []
            lo = 0
            for payload in payloads:
                hi = lo + len(payload)
                results.append(_slice_run(run, lo, hi))
                lo = hi
            return results

        key = (id(compiled), bool(include_loading), "campaign")
        result = self._submit_degradable(
            key, assignments, len(assignments), run_batch, deadline_s, run_direct
        )
        assert isinstance(result, BatchedCampaignRun)
        return result

    def iter_campaign(
        self,
        circuit: Circuit,
        library: GateLibrary,
        vectors: Iterable[Mapping[str, int]],
        include_loading: bool = True,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
    ) -> Iterator[BatchedCampaignRun]:
        """Stream a campaign as per-chunk runs instead of one result.

        Consumes ``vectors`` lazily in ``chunk_size`` slices and yields one
        :class:`BatchedCampaignRun` per slice as soon as its engine pass
        completes — the streaming shape campaign and Monte-Carlo consumers
        need for result sets too large (or too slow) to hold whole.
        Chunking never changes numbers (batch-composition invariance), so
        concatenating the streamed totals is bitwise identical to one
        :meth:`campaign` call.
        """
        compiled = self.compiled(circuit, library)
        chunk: list[dict[str, int]] = []
        for vector in vectors:
            chunk.append(dict(vector))
            if len(chunk) >= chunk_size:
                self._count_request()
                yield run_compiled(
                    compiled, chunk, include_loading=include_loading,
                    chunk_size=chunk_size,
                )
                chunk = []
        if chunk:
            self._count_request()
            yield run_compiled(
                compiled, chunk, include_loading=include_loading,
                chunk_size=chunk_size,
            )

    # ------------------------------------------------------------------ #
    # statistical leakage
    # ------------------------------------------------------------------ #
    def percentile_leakage(
        self,
        technology: Any,
        percentile: float = 99.9,
        spec: VariationSpec | None = None,
        samples: int = 256,
        replicates: int = 4,
        rng: RngLike = 0,
        component: str = "total",
        loaded: bool = True,
        input_value: int = 0,
        input_loads: int = 6,
        output_loads: int = 6,
        sampler: str = "qmc",
        engine: str = "batched",
        on_nonconverged: str = "drop",
        limit: float | None = None,
        confidence: float = 0.95,
        bootstrap: int = 500,
    ) -> StatisticalLeakageEstimate:
        """Estimate a leakage percentile (and yield) across process corners.

        Runs ``replicates`` independent variation studies of the Fig. 10
        loaded-inverter structure — with the default ``sampler="qmc"`` each
        replicate is an independently scrambled Sobol block (seeded from
        ``rng`` via ``SeedSequence.spawn``, reproducible) — pools the
        populations, and answers with:

        * the ``percentile`` leakage (e.g. 99.9 = the 99.9th-percentile
          leakage across corners) with a bootstrap confidence interval;
        * the yield fraction at ``limit`` when one is given;
        * an honest ``equivalent_mc_samples`` figure: the replicate scatter
          of the percentile statistic against a bootstrap proxy of the
          plain-MC error at the same total budget.

        The pooled population is cached under the SHA-256 fingerprint of
        every setting that shapes it (technology tree, spec, budget,
        sampler, engine, convergence policy, rng state token), so follow-up
        queries — a different percentile, a different component, a yield
        limit — reuse it without a single new circuit solve.  Dropped
        non-converged samples (default policy ``"drop"``: a stalled corner
        must not bias a yield estimate) simply shrink the population.
        """
        if replicates < 2:
            raise ValueError(
                "replicates must be at least 2 (the error estimate needs "
                "replicate scatter)"
            )
        spec = spec or VariationSpec()
        key = checkpoint_fingerprint(
            {
                "kind": "statistical-leakage-population",
                "technology": technology,
                "spec": spec,
                "samples": samples,
                "replicates": replicates,
                "input_value": input_value,
                "input_loads": input_loads,
                "output_loads": output_loads,
                "sampler": sampler,
                "engine": engine,
                "on_nonconverged": on_nonconverged,
                "rng": rng_state_token(rng),
            }
        )
        with self._lock:
            populations = self._populations.get(key)
            cached = populations is not None
            if cached:
                self._population_hits += 1
            else:
                self._population_misses += 1
        self._count_request()
        if populations is None:
            streams = spawn_streams(rng, replicates)
            runs = [
                run_loaded_inverter_monte_carlo(
                    technology,
                    spec=spec,
                    samples=samples,
                    rng=stream,
                    input_value=input_value,
                    input_loads=input_loads,
                    output_loads=output_loads,
                    engine=engine,
                    sampler=sampler,
                    on_nonconverged=on_nonconverged,
                )
                for stream in streams
            ]
            populations = {
                (name, flag): [run.values(name, loaded=flag) for run in runs]
                for name in _STATISTICAL_COMPONENTS
                for flag in (True, False)
            }
            with self._lock:
                self._populations[key] = populations
        if (component, loaded) not in populations:
            raise KeyError(f"unknown leakage component {component!r}")
        replicate_values = populations[(component, loaded)]
        pooled = np.concatenate(replicate_values)
        if pooled.size == 0:
            raise ValueError(
                "statistical-leakage population is empty: every Monte-Carlo "
                "sample was dropped as non-converged"
            )
        estimate = percentile_leakage(
            pooled, percentile, confidence=confidence, bootstrap=bootstrap, rng=0
        )
        replicate_stats = np.array(
            [
                np.percentile(values, percentile)
                for values in replicate_values
                if values.size
            ]
        )

        def _percentile_stat(block: np.ndarray, axis: int) -> np.ndarray:
            return np.percentile(block, percentile, axis=axis)

        equivalent = equivalent_mc_samples(
            pooled, replicate_stats, statistic=_percentile_stat, rng=0
        )
        yield_estimate = (
            None
            if limit is None
            else yield_fraction(
                pooled, limit, confidence=confidence, bootstrap=bootstrap, rng=0
            )
        )
        return StatisticalLeakageEstimate(
            percentile=estimate,
            yield_estimate=yield_estimate,
            equivalent_mc_samples=equivalent,
            sample_count=int(pooled.size),
            replicates=len(replicate_values),
            sampler=sampler,
            component=component,
            loaded=loaded,
            population_cached=cached,
        )

    # ------------------------------------------------------------------ #
    # degradation
    # ------------------------------------------------------------------ #
    def _submit_degradable(
        self,
        key: Any,
        payload: Any,
        n_vectors: int,
        run_batch: Any,
        deadline_s: float | None,
        run_direct: Any,
    ) -> Any:
        """Submit to the coalescer; degrade to direct evaluation on failure.

        A coalesced batch can fail because of *any* of its members (a
        poisoned payload, a dying ``run_batch``).  This caller's own
        deadline expiry and admission-control shedding propagate as-is —
        they are verdicts about this request.  Every other batch error
        triggers graceful degradation: the request re-evaluates its own
        payload directly (serial, uncoalesced), so a healthy request never
        fails because of the company it kept; if the payload itself is the
        poison, the direct run raises the true error.
        """
        try:
            return self._coalescer.submit(
                key, payload, n_vectors, run_batch, deadline_s=deadline_s
            )
        except (DeadlineExceeded, ServiceOverloaded):
            raise
        except Exception:
            with self._lock:
                self._degraded_requests += 1
            return run_direct()

    # ------------------------------------------------------------------ #
    # statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, dict[str, int]]:
        """Return a nested snapshot of every session counter.

        Sections: ``compile_cache`` (hits/misses/evictions/entries/maxsize),
        ``coalescer`` (requests, batches, flush kinds, vector accounting),
        ``libraries`` (registry hits/misses/entries) and — when a store is
        configured — ``store`` (loads/publishes/record counts).
        ``requests`` under ``session`` counts every front-end call
        (totals/campaign/streamed chunk/percentile query), coalesced or
        not; ``degraded_requests`` counts coalesced requests that fell back
        to direct serial evaluation after a batch failure.
        ``statistical_leakage`` tracks the pooled-population cache behind
        :meth:`percentile_leakage` (hits answer without circuit solves).
        """
        with self._lock:
            libraries = {
                "entries": len(self._libraries),
                "hits": self._library_hits,
                "misses": self._library_misses,
            }
            statistical = {
                "entries": len(self._populations),
                "hits": self._population_hits,
                "misses": self._population_misses,
            }
            requests = self._requests
            degraded = self._degraded_requests
        stats: dict[str, dict[str, int]] = {
            "session": {"requests": requests, "degraded_requests": degraded},
            "compile_cache": self.compile_cache.cache_info().as_dict(),
            "coalescer": self._coalescer.stats(),
            "libraries": libraries,
            "statistical_leakage": statistical,
        }
        if self.store is not None:
            stats["store"] = self.store.stats()
        return stats

    def _count_request(self) -> None:
        with self._lock:
            self._requests += 1


def stats_delta(
    before: Mapping[str, Mapping[str, int]],
    after: Mapping[str, Mapping[str, int]],
) -> dict[str, dict[str, int]]:
    """Return ``after - before`` per counter (monotonic counters only).

    Occupancy gauges (``entries``, ``maxsize``) are reported as their
    ``after`` value, not a difference — a delta of a gauge is meaningless.
    Sections or counters absent from ``before`` are treated as zero.
    """
    gauges = {"entries", "maxsize"}
    delta: dict[str, dict[str, int]] = {}
    for section, counters in after.items():
        base = before.get(section, {})
        delta[section] = {
            name: value if name in gauges else value - base.get(name, 0)
            for name, value in counters.items()
        }
    return delta


#: Lazily created process-default session (guarded by a lock, shared by the
#: thin adapters in core/optimize/experiments when no session is passed).
_DEFAULT_SESSION: EstimationSession | None = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def default_session() -> EstimationSession:
    """Return the process-default :class:`EstimationSession`.

    Its compile cache is the process-default
    :class:`~repro.engine.compile.CompileCache`, so estimation routed
    through the session and legacy direct
    :func:`~repro.engine.compile.compile_circuit` calls share warm entries
    (and :func:`~repro.engine.compile.clear_compile_cache` clears both).
    No on-disk store is attached — construct an explicit session for that.
    """
    global _DEFAULT_SESSION
    with _DEFAULT_SESSION_LOCK:
        if _DEFAULT_SESSION is None:
            _DEFAULT_SESSION = EstimationSession(
                compile_cache=default_compile_cache()
            )
        return _DEFAULT_SESSION
