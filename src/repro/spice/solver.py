"""DC operating-point solver.

The solver computes the static node voltages of a transistor-level netlist in
which every device is (almost) off — the leakage state of a CMOS circuit.  It
uses Gauss–Seidel relaxation: nodes are visited repeatedly and each node's
Kirchhoff current equation is solved as a one-dimensional problem with all
other node voltages held at their latest values.

Why relaxation instead of a global Newton?  In the leakage state each net is
held close to a rail by an on transistor, and the inter-gate coupling through
gate tunneling shifts voltages by only millivolts (that small shift *is* the
loading effect).  The per-node problems are therefore nearly independent, the
coupling is weak, and a handful of sweeps reaches microvolt-level
self-consistency — while staying robust (the scalar solves are bracketed, so
the exponential device characteristics can never make the iteration diverge).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from scipy.optimize import brentq

from repro.spice.netlist import NodeKind, TransistorNetlist


#: Solver algorithms accepted by :attr:`SolverOptions.method`.
SOLVER_METHODS = ("newton", "newton-sparse", "auto", "gauss-seidel")

#: The Newton family: methods that ride the damped-Newton globalization loop
#: of :mod:`repro.spice.newton` (they differ only in the linear-algebra
#: backend that produces the Newton steps).
NEWTON_METHODS = ("newton", "newton-sparse", "auto")


@dataclass(frozen=True)
class SolverOptions:
    """Tunable parameters of the DC solver.

    Attributes
    ----------
    method:
        Algorithm of the *batched* solver
        (:class:`repro.spice.batched.BatchedDcSolver`): ``"newton"``
        (default) takes damped Newton–Raphson steps with analytic device
        Jacobians and falls back per batch column to Gauss–Seidel sweeps
        when a step cannot reduce the KCL residual; ``"newton-sparse"``
        runs the identical damped-Newton iteration but assembles the
        free-node Jacobians as sparse CSC matrices and factorizes them with
        SuperLU (:mod:`repro.spice.sparse`) — O(nnz) memory instead of
        O(B·N²), the only feasible backend for ISCAS-scale netlists;
        ``"auto"`` picks ``"newton-sparse"`` when the free-node count
        reaches :attr:`newton_sparse_threshold` (or the dense Jacobian
        stack would exceed :attr:`newton_dense_memory_limit`) and
        ``"newton"`` otherwise; ``"gauss-seidel"`` runs the relaxation
        sweeps for every column (the batched oracle).  The scalar
        :class:`DcSolver` always uses Gauss–Seidel relaxation — it is the
        cross-check oracle every batched method is validated against.
    max_sweeps:
        Maximum number of Gauss–Seidel sweeps over all free nodes.
    voltage_tol:
        Convergence threshold on the largest node-voltage update in one
        sweep, in volts.  The default of 5 uV bounds the leakage error to
        roughly 0.05 % (the subthreshold sensitivity is ~40 %/mV), far below
        the loading effects being measured.
    bracket_margin:
        How far outside [0, VDD] the scalar solves may search, in volts.
    initial_window:
        Half-width of the first bracket tried around a node's current
        voltage; widened geometrically until the residual changes sign.
    xtol:
        Absolute voltage tolerance of the scalar root finder.
    cluster_interval:
        Every this-many sweeps (and on the first one), groups of free nodes
        tied together by a strongly conducting channel are first moved by a
        common *shift* solving their summed KCL equation.  Such groups (e.g.
        the interior nodes of a series stack whose middle transistor is on)
        move almost rigidly, and per-node Gauss–Seidel alone converges their
        common-mode voltage only very slowly; the supernode pass removes
        that slow mode.  Because the pass shifts the members together — it
        never collapses them to one voltage — the microvolt IR drops across
        the conducting channel are preserved and the pass stays harmless
        arbitrarily close to convergence (the shift simply tends to zero).
    newton_max_iterations:
        Iteration budget of the batched Newton solver; a column that has
        not converged when it runs out falls back to Gauss–Seidel sweeps.
        Newton typically converges in 5–15 iterations from a cold start and
        1–4 from a warm start, so the default leaves generous headroom.
    newton_backtracks:
        Maximum step halvings of the per-column backtracking line search; a
        column whose residual norm does not decrease even at the smallest
        damping falls back to Gauss–Seidel.
    newton_step_limit:
        Length limit (V) on a column's Newton step: a step whose largest
        node component exceeds it is *scaled down* whole (preserving the
        Newton direction — a component-wise clip could turn it into a
        non-descent direction and stall the line search).  The exponential
        device characteristics make far-from-solution Jacobians wildly
        optimistic; limiting the step keeps the first iterations inside
        the region where the line search is meaningful.
    newton_sparse_threshold:
        Free-node count at (and above) which ``method="auto"`` selects the
        sparse Newton backend.  The dense backend amortizes its O(N³)
        batched factorization well on the small cells of the
        characterizer; on circuit-sized systems the sparse factorization
        wins long before memory becomes the binding constraint.
    newton_dense_memory_limit:
        Byte budget of the dense backend's ``(B, N, N)`` Jacobian stack.
        ``method="newton"`` *pre-flight checks* the allocation against this
        limit and raises a :class:`~repro.spice.newton.DenseJacobianMemoryError`
        naming the system size and the ``method="newton-sparse"`` escape
        hatch instead of dying in a bare NumPy ``MemoryError`` mid-assembly;
        ``method="auto"`` switches to the sparse backend instead of raising.
    """

    max_sweeps: int = 80
    voltage_tol: float = 5.0e-6
    bracket_margin: float = 0.1
    initial_window: float = 0.05
    xtol: float = 1.0e-8
    cluster_interval: int = 10
    method: str = "newton"
    newton_max_iterations: int = 60
    newton_backtracks: int = 12
    newton_step_limit: float = 0.5
    newton_sparse_threshold: int = 1024
    newton_dense_memory_limit: float = 4.0e9

    def __post_init__(self) -> None:
        if self.max_sweeps < 1:
            raise ValueError("max_sweeps must be at least 1")
        if self.voltage_tol <= 0 or self.xtol <= 0:
            raise ValueError("tolerances must be positive")
        if self.cluster_interval < 1:
            raise ValueError("cluster_interval must be at least 1")
        if self.method not in SOLVER_METHODS:
            raise ValueError(
                f"method must be one of {SOLVER_METHODS}, got {self.method!r}"
            )
        if self.newton_max_iterations < 1:
            raise ValueError("newton_max_iterations must be at least 1")
        if self.newton_backtracks < 0:
            raise ValueError("newton_backtracks must be non-negative")
        if self.newton_step_limit <= 0:
            raise ValueError("newton_step_limit must be positive")
        if self.newton_sparse_threshold < 1:
            raise ValueError("newton_sparse_threshold must be at least 1")
        if self.newton_dense_memory_limit <= 0:
            raise ValueError("newton_dense_memory_limit must be positive")


@dataclass
class OperatingPoint:
    """Result of a DC solve.

    Attributes
    ----------
    voltages:
        Node name to solved voltage (fixed nodes included).
    temperature_k:
        Temperature the solve was performed at (needed to re-evaluate device
        currents at this operating point).
    converged:
        True when the last sweep's largest update fell below the tolerance.
    sweeps:
        Number of Gauss–Seidel sweeps performed.
    max_update:
        Largest node-voltage change in the final sweep, in volts.
    """

    voltages: dict[str, float]
    temperature_k: float
    converged: bool
    sweeps: int
    max_update: float

    def voltage(self, node: str) -> float:
        """Return the solved voltage of ``node``."""
        return self.voltages[node]


@dataclass
class _NodeProblem:
    """Pre-indexed data for one free node's scalar KCL solve."""

    name: str
    attachments: list[tuple[object, str]] = field(default_factory=list)
    injection: float = 0.0


class DcSolver:
    """Gauss–Seidel DC operating-point solver for a :class:`TransistorNetlist`."""

    def __init__(
        self,
        netlist: TransistorNetlist,
        temperature_k: float,
        options: SolverOptions | None = None,
    ) -> None:
        if temperature_k <= 0:
            raise ValueError("temperature_k must be positive")
        netlist.validate()
        self.netlist = netlist
        self.temperature_k = float(temperature_k)
        self.options = options or SolverOptions()

        attachment_index = netlist.attachments()
        injections = netlist.injections()
        self._problems: list[_NodeProblem] = []
        for node in netlist.nodes.values():
            if node.kind is not NodeKind.FREE:
                continue
            self._problems.append(
                _NodeProblem(
                    name=node.name,
                    attachments=attachment_index[node.name],
                    injection=injections.get(node.name, 0.0),
                )
            )

        # Whether any channel connects two free nodes: only then can the
        # supernode pass (and its convergence bookkeeping) matter at all.
        free_names = {problem.name for problem in self._problems}
        self._has_cluster_edges = any(
            t.drain in free_names and t.source in free_names
            for t in netlist.transistors
        )

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def solve(self, initial_voltages: dict[str, float] | None = None) -> OperatingPoint:
        """Solve for the DC operating point.

        Parameters
        ----------
        initial_voltages:
            Optional initial guesses for free nodes (e.g. the rail implied by
            the logic value).  Unlisted free nodes start from their stored
            voltage (zero by default).  Good guesses cut the sweep count
            roughly in half but are never required for convergence.
        """
        voltages = {name: node.voltage for name, node in self.netlist.nodes.items()}
        if initial_voltages:
            for name, value in initial_voltages.items():
                node = self.netlist.nodes.get(name)
                if node is not None and node.kind is NodeKind.FREE:
                    voltages[name] = float(value)

        options = self.options
        lo_limit = -options.bracket_margin
        hi_limit = self.netlist.vdd + options.bracket_margin

        sweeps = 0
        max_update = float("inf")
        converged = False
        pending_final_cluster = False
        for sweeps in range(1, options.max_sweeps + 1):
            # The supernode pass moves each conducting cluster rigidly (a
            # common shift), so it accelerates the slow common mode without
            # touching the fine intra-cluster structure — safe to re-apply
            # at any phase of the iteration.
            run_cluster = self._has_cluster_edges and (
                pending_final_cluster
                or (sweeps - 1) % options.cluster_interval == 0
            )
            if run_cluster:
                self._solve_clusters(voltages, lo_limit, hi_limit)
            # Convergence only counts on a sweep whose state has seen the
            # cluster pass: per-node updates measure the fast modes, while
            # the cluster common mode can hold an update/(1 - rho) error
            # the sweep criterion cannot see.  A netlist without free-free
            # channels has no such mode, so every sweep counts.
            countable = run_cluster or not self._has_cluster_edges
            pending_final_cluster = False
            max_update = 0.0
            for problem in self._problems:
                old = voltages[problem.name]
                new = self._solve_node(problem, voltages, lo_limit, hi_limit)
                voltages[problem.name] = new
                update = abs(new - old)
                if update > max_update:
                    max_update = update
            if max_update < options.voltage_tol:
                if countable:
                    converged = True
                    break
                # Below tolerance but the slow mode is unchecked: force a
                # cluster pass on the next sweep and re-measure.
                pending_final_cluster = True

        return OperatingPoint(
            voltages=voltages,
            temperature_k=self.temperature_k,
            converged=converged,
            sweeps=sweeps,
            max_update=max_update,
        )

    def residual(self, node: str, voltages: dict[str, float]) -> float:
        """Return the KCL residual (A) of ``node`` at the given voltages.

        Positive residual means more current flows out of the node (into the
        attached devices) than is injected into it, so the node voltage must
        fall; a converged operating point has residuals near zero on every
        free node.
        """
        for problem in self._problems:
            if problem.name == node:
                return self._residual(problem, voltages, voltages[node])
        raise KeyError(f"{node!r} is not a free node of this netlist")

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _residual(
        self, problem: _NodeProblem, voltages: dict[str, float], trial: float
    ) -> float:
        """KCL residual of ``problem`` with its node at ``trial`` volts."""
        temperature = self.temperature_k
        total = -problem.injection
        name = problem.name
        for transistor, terminal in problem.attachments:
            vg = trial if transistor.gate == name else voltages[transistor.gate]
            vd = trial if transistor.drain == name else voltages[transistor.drain]
            vs = trial if transistor.source == name else voltages[transistor.source]
            vb = trial if transistor.bulk == name else voltages[transistor.bulk]
            ig, idr, isr, ib = transistor.mosfet.kcl_currents(
                vg, vd, vs, vb, temperature
            )
            if terminal == "gate":
                total += ig
            elif terminal == "drain":
                total += idr
            elif terminal == "source":
                total += isr
            else:
                total += ib
        return total

    def _solve_node(
        self,
        problem: _NodeProblem,
        voltages: dict[str, float],
        lo_limit: float,
        hi_limit: float,
    ) -> float:
        """Solve the scalar KCL equation of one node by bracketed root finding."""
        options = self.options
        current = voltages[problem.name]

        def f(v: float) -> float:
            return self._residual(problem, voltages, v)

        # Expand a window around the current voltage until the residual
        # changes sign; later sweeps converge with the narrowest window.
        window = options.initial_window
        while True:
            lo = max(lo_limit, current - window)
            hi = min(hi_limit, current + window)
            f_lo = f(lo)
            f_hi = f(hi)
            if f_lo == 0.0:
                return lo
            if f_hi == 0.0:
                return hi
            if f_lo * f_hi < 0.0:
                return float(brentq(f, lo, hi, xtol=options.xtol))
            if lo <= lo_limit and hi >= hi_limit:
                break
            window *= 4.0

        # No sign change over the whole admissible range: the node is pinned
        # at whichever end carries the smaller residual magnitude (this only
        # happens for pathological netlists, e.g. a node attached solely to
        # gate terminals with a large forced injection).
        return lo if abs(f_lo) <= abs(f_hi) else hi

    # ------------------------------------------------------------------ #
    # supernode (cluster) acceleration
    # ------------------------------------------------------------------ #
    def _conducting_clusters(self, voltages: dict[str, float]) -> list[list[str]]:
        """Group free nodes connected through logically-on channels.

        Two free nodes belong to the same cluster when the transistor between
        them has its gate driven to the "on" half of the supply (above
        mid-rail for NMOS, below it for PMOS).  Such a channel either already
        conducts or will start conducting as soon as the pair drifts toward
        its equilibrium, forcing the two nodes to move almost rigidly —
        exactly the slow mode plain Gauss–Seidel struggles with.  The
        criterion deliberately uses only the gate voltage: the source-side
        voltage of a floating stack node is not known until the solve has
        finished, which is the chicken-and-egg this pass breaks.
        """
        # Iterate in problem order throughout: building these structures
        # from a set would make cluster membership *order* (and therefore
        # the cluster-residual summation order) depend on the process hash
        # seed, turning the solve nondeterministic at the last-ulp level.
        order = [problem.name for problem in self._problems]
        free_names = set(order)
        parent: dict[str, str] = {name: name for name in order}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        def union(a: str, b: str) -> None:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        mid_rail = 0.5 * self.netlist.vdd
        for transistor in self.netlist.transistors:
            drain, source = transistor.drain, transistor.source
            if drain not in free_names or source not in free_names:
                continue
            sign = transistor.mosfet.device.polarity.sign
            if sign * (voltages[transistor.gate] - mid_rail) > 0.0:
                union(drain, source)

        clusters: dict[str, list[str]] = {}
        for name in order:
            clusters.setdefault(find(name), []).append(name)
        return [members for members in clusters.values() if len(members) > 1]

    def _solve_clusters(
        self, voltages: dict[str, float], lo_limit: float, hi_limit: float
    ) -> None:
        """Move each conducting cluster by a common shift (supernode solve).

        The one-dimensional unknown is a rigid shift ``delta`` applied to
        every member, chosen so the *summed* KCL residual of the cluster
        vanishes.  Solving for a shift rather than a common voltage keeps the
        microvolt intra-cluster drops intact, which is what allows this pass
        to run arbitrarily close to convergence without undoing the per-node
        refinement (near the solution the shift is simply ~0).
        """
        problems_by_name = {problem.name: problem for problem in self._problems}
        for members in self._conducting_clusters(voltages):
            cluster_problems = [problems_by_name[name] for name in members]
            base = {name: voltages[name] for name in members}

            def cluster_residual(delta: float) -> float:
                trial = dict(voltages)
                for name in members:
                    trial[name] = base[name] + delta
                return sum(
                    self._residual(problem, trial, base[problem.name] + delta)
                    for problem in cluster_problems
                )

            # The shift range keeps every member inside the admissible band.
            lo_delta = lo_limit - min(base.values())
            hi_delta = hi_limit - max(base.values())
            if lo_delta >= hi_delta:  # pragma: no cover - defensive
                continue
            f_lo = cluster_residual(lo_delta)
            f_hi = cluster_residual(hi_delta)
            if f_lo == 0.0:
                shift = lo_delta
            elif f_hi == 0.0:
                shift = hi_delta
            elif f_lo * f_hi < 0.0:
                shift = float(
                    brentq(cluster_residual, lo_delta, hi_delta, xtol=self.options.xtol)
                )
            else:
                continue
            for name in members:
                voltages[name] = base[name] + shift
