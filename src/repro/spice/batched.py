"""Batched DC operating-point solver: B same-topology netlists at once.

:class:`BatchedDcSolver` solves ``B`` instances of one netlist *topology*
simultaneously.  The instances must share structure (same node names and
kinds, same transistor slots and polarities) but may differ in everything
numeric: fixed-node voltages (including the supply itself), injected
currents, device parameters and per-transistor threshold shifts.  That covers
both batched workloads of this library:

* gate characterization — one cell topology swept over (input vector, pin,
  injection-current) grids, and
* Monte-Carlo process variation — one circuit flattened per sample with
  shifted technologies and per-transistor Vth shifts.

Solution scheme
---------------
Two methods are available, selected by
:attr:`~repro.spice.solver.SolverOptions.method`:

* ``"newton"`` (default) — a damped Newton–Raphson iteration on the full
  free-node Kirchhoff system with analytic device Jacobians, per-column
  line search and a per-column fallback to the Gauss–Seidel sweeps; see
  :mod:`repro.spice.newton`.  This converges in ~5–15 iterations where the
  relaxation needs tens to hundreds of sweeps.
* ``"newton-sparse"`` — the same damped-Newton iteration with sparse CSC
  Jacobian assembly and SuperLU factorization (:mod:`repro.spice.sparse`);
  O(nnz) memory instead of O(B·N²), the backend for ISCAS-scale netlists.
* ``"auto"`` — picks between the two Newton backends by free-node count
  and the dense memory estimate (see
  :attr:`~repro.spice.solver.SolverOptions.newton_sparse_threshold`).
* ``"gauss-seidel"`` — the relaxation described below, kept as the batched
  oracle (and as the fallback engine of every Newton backend).

The sweep structure mirrors :class:`~repro.spice.solver.DcSolver` exactly —
Gauss–Seidel relaxation with a periodic conducting-cluster supernode pass (a
rigid common shift of each cluster) — but every per-node scalar solve becomes *one*
vectorized bracketed root find across the whole batch
(:func:`repro.utils.rootfind.chandrupatla`): the bracket window is expanded
per column until the Kirchhoff residual changes sign (columns with no sign
change over the admissible range are pinned to the smaller-residual endpoint,
exactly like the scalar solver), then all columns converge together with
per-column masking.

Convergence masking: a batch instance whose largest node update falls below
``voltage_tol`` is *frozen* — subsequent sweeps operate on the shrinking set
of active columns only, so finished instances stop paying for the stragglers.
Because every update in the sweep, the window expansion and the root finder
is element-wise and masked, a column's trajectory is bit-for-bit independent
of which other columns share the batch; solving ``B`` instances in one batch,
in chunks, or one at a time produces identical voltages.  The parallel
Monte-Carlo driver relies on this to stay reproducible across worker counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.device.batched import PackedMosfets
from repro.spice.analysis import (
    BatchedComponentBreakdown,
    batched_leakage_by_owner,
    owner_slot_ids,
)
from repro.spice.netlist import NodeKind, TransistorNetlist
from repro.spice.solver import NEWTON_METHODS, OperatingPoint, SolverOptions
from repro.utils.rootfind import chandrupatla

#: Terminal evaluation order shared with :meth:`TransistorInstance.terminals`.
_TERMINALS = ("gate", "drain", "source", "bulk")


@dataclass
class BatchedOperatingPoint:
    """Result of a batched DC solve.

    Attributes
    ----------
    node_index:
        Node name to row of ``voltages``.
    voltages:
        Solved node voltages, shape ``(nodes, B)`` (fixed nodes included).
    temperature_k:
        Temperature of the solve.
    converged:
        Per-instance convergence flags, shape ``(B,)``.
    sweeps:
        Per-instance iteration counts of the method that produced the
        column: Gauss–Seidel sweep counts for relaxation-solved columns
        (including Newton-fallback columns), Newton iteration counts for
        Newton-solved ones.
    max_update:
        Per-instance largest node update of the final active sweep (V).
    method:
        ``"newton"``, ``"newton-sparse"`` or ``"gauss-seidel"`` — the
        *resolved* solver method this batch rode (``method="auto"`` records
        the backend it actually picked, never the literal ``"auto"``).
    newton_iterations:
        Per-instance Newton iteration counts, or None for a pure
        Gauss–Seidel solve.  Fallback columns record the iterations spent
        before the fallback.
    fallback:
        Per-instance flags marking columns the Newton solver handed to the
        Gauss–Seidel fallback, or None for a pure Gauss–Seidel solve.
    """

    node_index: dict[str, int]
    voltages: np.ndarray
    temperature_k: float
    converged: np.ndarray
    sweeps: np.ndarray
    max_update: np.ndarray
    method: str = "gauss-seidel"
    newton_iterations: np.ndarray | None = None
    fallback: np.ndarray | None = None

    @property
    def batch(self) -> int:
        """Return the number of batch instances."""
        return self.voltages.shape[1]

    @property
    def all_converged(self) -> bool:
        """Return True when every instance converged."""
        return bool(np.all(self.converged))

    def voltage(self, node: str) -> np.ndarray:
        """Return the solved voltages of ``node`` across the batch, ``(B,)``."""
        return self.voltages[self.node_index[node]]

    def operating_point(self, index: int) -> OperatingPoint:
        """Materialize instance ``index`` as a scalar :class:`OperatingPoint`."""
        return OperatingPoint(
            voltages={
                name: float(self.voltages[row, index])
                for name, row in self.node_index.items()
            },
            temperature_k=self.temperature_k,
            converged=bool(self.converged[index]),
            sweeps=int(self.sweeps[index]),
            max_update=float(self.max_update[index]),
        )


class _NodeProblem:
    """Pre-indexed batched data for one free node's KCL solve."""

    __slots__ = (
        "name",
        "row",
        "terminal_rows",
        "self_masks",
        "weights",
        "packed",
        "injection",
    )

    def __init__(self, name, row, terminal_rows, self_masks, weights, packed, injection):
        self.name = name
        self.row = row
        #: (4, A) node-row of each terminal of each attachment.
        self.terminal_rows = terminal_rows
        #: (4, A, 1) True where that terminal is this node (gets the trial x).
        self.self_masks = self_masks
        #: (4, A, 1) one-hot: which terminal current the attachment contributes.
        self.weights = weights
        self.packed = packed
        #: (B,) injected current per instance.
        self.injection = injection

    def take_columns(self, columns: np.ndarray) -> "_NodeProblem":
        """Return a batch-column subset of this problem."""
        return _NodeProblem(
            self.name,
            self.row,
            self.terminal_rows,
            self.self_masks,
            self.weights,
            self.packed.take_columns(columns),
            self.injection[columns],
        )


class _ClusterComponent:
    """One maximal free-node region connectable by channel edges.

    Channel (free drain - free source) edges only exist inside a gate
    template, so these regions are small (an output node plus its stack
    nodes) and their conducting sub-clusters depend only on the local edge
    pattern — the key fact that lets the cluster pass group batch columns
    per component instead of by the global pattern.
    """

    __slots__ = ("rows", "edge_indices", "edges", "_cluster_cache")

    def __init__(self, rows: list[int], edge_indices: np.ndarray, edges) -> None:
        self.rows = rows
        #: Indices of this component's edges into the solver's edge list.
        self.edge_indices = edge_indices
        self.edges = edges
        self._cluster_cache: dict[bytes, list[list[int]]] = {}

    def clusters_for(self, pattern: np.ndarray) -> list[list[int]]:
        """Union-find the component rows joined by the conducting edges.

        Patterns recur heavily across sweeps (a node's conducting state is
        set by quasi-static gate voltages), so results are memoized per
        pattern.  Member lists keep free-row order; singletons are dropped.
        """
        key = pattern.tobytes()
        cached = self._cluster_cache.get(key)
        if cached is not None:
            return cached

        parent = {row: row for row in self.rows}

        def find(row: int) -> int:
            while parent[row] != row:
                parent[row] = parent[parent[row]]
                row = parent[row]
            return row

        for edge, on in zip(self.edges, pattern):
            if not on:
                continue
            _gate, drain, source, _sign = edge
            ra, rb = find(drain), find(source)
            if ra != rb:
                parent[ra] = rb

        groups: dict[int, list[int]] = {}
        for row in self.rows:
            groups.setdefault(find(row), []).append(row)
        clusters = [members for members in groups.values() if len(members) > 1]
        self._cluster_cache[key] = clusters
        return clusters


class BatchedDcSolver:
    """Gauss–Seidel DC solver for a batch of same-topology netlists.

    Parameters
    ----------
    netlists:
        ``B`` netlists sharing one topology (see module docstring).  The
        first netlist is the structural reference; any structural deviation
        in the others raises ``ValueError``.
    temperature_k:
        Solve temperature, shared by the batch.
    options:
        Same options as the scalar solver; ``xtol`` bounds the per-node root
        accuracy, ``voltage_tol`` the sweep convergence.
    """

    def __init__(
        self,
        netlists: Sequence[TransistorNetlist],
        temperature_k: float,
        options: SolverOptions | None = None,
    ) -> None:
        if not netlists:
            raise ValueError("need at least one netlist")
        if temperature_k <= 0:
            raise ValueError("temperature_k must be positive")
        self.netlists = list(netlists)
        self.temperature_k = float(temperature_k)
        self.options = options or SolverOptions()
        self.batch = len(self.netlists)

        reference = self.netlists[0]
        reference.validate()
        self._check_topology(reference)

        self.node_names = list(reference.nodes)
        self.node_index = {name: row for row, name in enumerate(self.node_names)}
        self._free_rows = [
            self.node_index[n.name]
            for n in reference.nodes.values()
            if n.kind is NodeKind.FREE
        ]

        # Device grid: slot t, instance b.
        self.packed = PackedMosfets(
            [
                [net.transistors[t].mosfet for net in self.netlists]
                for t in range(len(reference.transistors))
            ],
            self.temperature_k,
        )

        # Per-transistor terminal rows, used by the post-solve analysis.
        self._transistor_rows = np.array(
            [
                [self.node_index[getattr(t, term)] for t in reference.transistors]
                for term in _TERMINALS
            ],
            dtype=int,
        )
        self._owners = [t.owner for t in reference.transistors]
        self._owner_order, self._owner_ids = owner_slot_ids(self._owners)

        # Supply-dependent per-instance quantities.
        self._vdd = np.array([net.vdd for net in self.netlists])
        self._lo_limit = -self.options.bracket_margin
        self._hi_limit = self._vdd + self.options.bracket_margin
        self._mid_rail = 0.5 * self._vdd

        self._problems = self._build_problems(reference)
        self._problems_by_row = {p.row: p for p in self._problems}
        self._cluster_edges = self._build_cluster_edges(reference)
        self._cluster_gate_rows = np.array(
            [e[0] for e in self._cluster_edges], dtype=int
        )
        self._cluster_signs = np.array([e[3] for e in self._cluster_edges])[:, None]
        self._cluster_components = self._build_cluster_components()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    def _check_topology(self, reference: TransistorNetlist) -> None:
        ref_nodes = {
            name: (node.kind, name) for name, node in reference.nodes.items()
        }
        for position, net in enumerate(self.netlists[1:], start=1):
            if set(net.nodes) != set(ref_nodes):
                raise ValueError(
                    f"netlist {position} has different node names than the reference"
                )
            for name, node in net.nodes.items():
                if node.kind is not reference.nodes[name].kind:
                    raise ValueError(
                        f"netlist {position}: node {name!r} changed kind"
                    )
            if net.transistors is reference.transistors:
                # Shared-topology views (the batched reference path) share the
                # transistor list object outright — structurally identical by
                # construction, so the per-transistor comparison is skipped.
                continue
            if len(net.transistors) != len(reference.transistors):
                raise ValueError(
                    f"netlist {position} has a different transistor count"
                )
            for t_ref, t_other in zip(reference.transistors, net.transistors):
                if (
                    t_ref.gate != t_other.gate
                    or t_ref.drain != t_other.drain
                    or t_ref.source != t_other.source
                    or t_ref.bulk != t_other.bulk
                    or t_ref.owner != t_other.owner
                    or t_ref.mosfet.polarity is not t_other.mosfet.polarity
                ):
                    raise ValueError(
                        f"netlist {position}: transistor {t_ref.name!r} differs "
                        "structurally from the reference"
                    )

    def _build_problems(self, reference: TransistorNetlist) -> list[_NodeProblem]:
        attachment_index = reference.attachments()
        injections = [net.injections() for net in self.netlists]
        transistor_slot = {t.name: i for i, t in enumerate(reference.transistors)}

        problems: list[_NodeProblem] = []
        for node in reference.nodes.values():
            if node.kind is not NodeKind.FREE:
                continue
            attachments = attachment_index[node.name]
            slots = [transistor_slot[t.name] for t, _terminal in attachments]
            terminal_rows = np.array(
                [
                    [
                        self.node_index[getattr(t, term)]
                        for t, _terminal in attachments
                    ]
                    for term in _TERMINALS
                ],
                dtype=int,
            )
            row = self.node_index[node.name]
            self_masks = (terminal_rows == row)[:, :, None]
            weights = np.array(
                [
                    [1.0 if terminal == term else 0.0 for _t, terminal in attachments]
                    for term in _TERMINALS
                ]
            )[:, :, None]
            injection = np.array(
                [inj.get(node.name, 0.0) for inj in injections]
            )
            problems.append(
                _NodeProblem(
                    name=node.name,
                    row=row,
                    terminal_rows=terminal_rows,
                    self_masks=self_masks,
                    weights=weights,
                    packed=self.packed.rows(slots),
                    injection=injection,
                )
            )
        return problems

    def _build_cluster_edges(self, reference: TransistorNetlist):
        """Return (gate_row, drain_row, source_row, sign) per free-free channel."""
        free_rows = set(self._free_rows)
        edges = []
        for transistor in reference.transistors:
            drain = self.node_index[transistor.drain]
            source = self.node_index[transistor.source]
            if drain not in free_rows or source not in free_rows:
                continue
            edges.append(
                (
                    self.node_index[transistor.gate],
                    drain,
                    source,
                    transistor.mosfet.device.polarity.sign,
                )
            )
        return edges

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def solve(
        self,
        initial_voltages: Mapping[str, float | np.ndarray]
        | Sequence[Mapping[str, float]]
        | None = None,
    ) -> BatchedOperatingPoint:
        """Solve the batch and return the per-instance operating points.

        Parameters
        ----------
        initial_voltages:
            Optional initial guesses for free nodes: either one mapping
            applied to every instance (values may be scalars or ``(B,)``
            arrays — the warm-start path of the characterizer passes arrays),
            or a sequence of ``B`` per-instance mappings.  Unlisted free
            nodes start from their stored netlist voltage.
        """
        voltages = self._initial_matrix(initial_voltages)
        if self.options.method in NEWTON_METHODS:
            from repro.spice.newton import solve_newton

            return solve_newton(self, voltages)
        converged, sweeps, max_update = self._solve_gauss_seidel(voltages)
        return BatchedOperatingPoint(
            node_index=self.node_index,
            voltages=voltages,
            temperature_k=self.temperature_k,
            converged=converged,
            sweeps=sweeps,
            max_update=max_update,
            method="gauss-seidel",
        )

    def _solve_gauss_seidel(
        self, voltages: np.ndarray, columns: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Run the Gauss–Seidel sweeps on ``voltages`` in place.

        Parameters
        ----------
        voltages:
            Full ``(nodes, B)`` voltage matrix; only the selected columns
            are read or written.
        columns:
            Absolute batch-column indices to solve, or None for the whole
            batch.  The Newton solver passes its fallback columns here;
            because every update is per-column masked, solving a subset is
            bitwise identical to solving those columns in any other batch.

        Returns ``(converged, sweeps, max_update)`` over the selected
        columns.
        """
        options = self.options
        count = self.batch if columns is None else len(columns)

        converged = np.zeros(count, dtype=bool)
        sweeps = np.zeros(count, dtype=int)
        max_update = np.full(count, np.inf)
        # Columns below tolerance whose slow (cluster common) mode has not
        # been checked yet: they get a targeted cluster pass next sweep
        # before convergence counts.  Tracking this per column keeps every
        # column's trajectory independent of its batch neighbours.
        pending_final = np.zeros(count, dtype=bool)
        has_edges = bool(self._cluster_edges)

        for sweep in range(1, options.max_sweeps + 1):
            active = np.flatnonzero(~converged)
            if active.size == 0:
                break
            absolute = active if columns is None else columns[active]
            whole = columns is None and active.size == self.batch
            v_active = voltages if whole else voltages[:, absolute]
            hi_limit = self._hi_limit if whole else self._hi_limit[absolute]
            mid_rail = self._mid_rail if whole else self._mid_rail[absolute]

            scheduled = (sweep - 1) % options.cluster_interval == 0
            cluster_mask = (
                np.full(active.size, scheduled) | pending_final[active]
            )
            if has_edges and cluster_mask.any():
                self._solve_clusters(
                    v_active, hi_limit, mid_rail, absolute, cluster_mask
                )
            # A sweep's convergence only counts for columns whose state has
            # seen the cluster pass (mirrors the scalar solver).
            countable = cluster_mask | (not has_edges)
            pending_final[active] = False

            update_max = np.zeros(active.size)
            for problem in self._problems:
                active_problem = (
                    problem if whole else problem.take_columns(absolute)
                )
                solved = self._solve_node(active_problem, v_active, hi_limit)
                update = np.abs(solved - v_active[problem.row])
                v_active[problem.row] = solved
                np.maximum(update_max, update, out=update_max)

            if not whole:
                voltages[:, absolute] = v_active
            sweeps[active] = sweep
            max_update[active] = update_max
            below = update_max < options.voltage_tol
            converged[active] = below & countable
            pending_final[active] = below & ~countable

        return converged, sweeps, max_update

    # ------------------------------------------------------------------ #
    # post-solve analysis
    # ------------------------------------------------------------------ #
    def leakage_by_owner(
        self, op: BatchedOperatingPoint
    ) -> dict[str, BatchedComponentBreakdown]:
        """Return per-owner leakage components across the batch.

        The batched twin of :func:`repro.spice.analysis.leakage_by_owner`:
        every transistor of every instance is re-evaluated at the solved
        voltages in one array pass, then scatter-added per owner tag
        (:func:`repro.spice.analysis.batched_leakage_by_owner`, with the
        owner indexing hoisted to construction time).
        """
        g, d, s, b = (op.voltages[rows] for rows in self._transistor_rows)
        components = self.packed.component_currents(g, d, s, b)
        return batched_leakage_by_owner(
            self._owners,
            components,
            slot_ids=self._owner_ids,
            owner_order=self._owner_order,
        )

    def gate_injection_at_node(
        self,
        op: BatchedOperatingPoint,
        node: str,
        exclude_owners: set[str] | frozenset[str] = frozenset(),
    ) -> np.ndarray:
        """Batched :func:`repro.spice.analysis.gate_injection_at_node`, ``(B,)``."""
        g, d, s, b = (op.voltages[rows] for rows in self._transistor_rows)
        components = self.packed.component_currents(g, d, s, b)
        row = self.node_index[node]
        injection = np.zeros(op.batch)
        for slot, transistor in enumerate(self.netlists[0].transistors):
            if self._transistor_rows[0, slot] != row:
                continue
            if transistor.owner in exclude_owners:
                continue
            injection -= components.ig[slot]
        return injection

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _initial_matrix(self, initial_voltages) -> np.ndarray:
        reference = self.netlists[0]
        base = np.empty((len(self.node_names), self.batch))
        for row, name in enumerate(self.node_names):
            base[row] = [net.nodes[name].voltage for net in self.netlists]
        if initial_voltages is None:
            return base
        free = {
            name
            for name, node in reference.nodes.items()
            if node.kind is NodeKind.FREE
        }
        if isinstance(initial_voltages, Mapping):
            guesses: Sequence[Mapping] = [initial_voltages]
            broadcast = True
        else:
            guesses = list(initial_voltages)
            if len(guesses) != self.batch:
                raise ValueError(
                    f"expected {self.batch} initial-voltage mappings, got {len(guesses)}"
                )
            broadcast = False
        for column, mapping in enumerate(guesses):
            for name, value in mapping.items():
                if name not in free:
                    continue
                row = self.node_index[name]
                if broadcast:
                    base[row] = np.asarray(value, dtype=float)
                else:
                    base[row, column] = float(value)
        return base

    def _residual(
        self, problem: _NodeProblem, voltages: np.ndarray, trial: np.ndarray
    ) -> np.ndarray:
        """KCL residual of ``problem`` with its node at ``trial``, ``(B,)``."""
        rows = problem.terminal_rows
        masks = problem.self_masks
        vg = np.where(masks[0], trial, voltages[rows[0]])
        vd = np.where(masks[1], trial, voltages[rows[1]])
        vs = np.where(masks[2], trial, voltages[rows[2]])
        vb = np.where(masks[3], trial, voltages[rows[3]])
        ig, idr, isr, ib = problem.packed.kcl_currents(vg, vd, vs, vb)
        weights = problem.weights
        total = (
            ig * weights[0] + idr * weights[1] + isr * weights[2] + ib * weights[3]
        ).sum(axis=0)
        return total - problem.injection

    def _bracket(
        self,
        center: np.ndarray,
        hi_limit: np.ndarray,
        residual,
    ):
        """Expand per-column windows around ``center`` until the sign changes.

        Mirrors the scalar solver's geometric window expansion; returns the
        brackets, their residuals, and the mask of columns with no sign
        change over the whole admissible range (those get pinned).
        """
        options = self.options
        lo_limit = self._lo_limit
        window = np.full(center.shape, options.initial_window)
        lo = np.maximum(lo_limit, center - window)
        hi = np.minimum(hi_limit, center + window)
        f_lo = residual(lo)
        f_hi = residual(hi)

        def unresolved(f_lo, f_hi):
            return (f_lo != 0.0) & (f_hi != 0.0) & (f_lo * f_hi > 0.0)

        pending = unresolved(f_lo, f_hi) & ~((lo <= lo_limit) & (hi >= hi_limit))
        while pending.any():
            window = np.where(pending, window * 4.0, window)
            lo = np.where(pending, np.maximum(lo_limit, center - window), lo)
            hi = np.where(pending, np.minimum(hi_limit, center + window), hi)
            f_lo = np.where(pending, residual(lo), f_lo)
            f_hi = np.where(pending, residual(hi), f_hi)
            pending = (
                unresolved(f_lo, f_hi)
                & ~((lo <= lo_limit) & (hi >= hi_limit))
            )
        no_sign_change = unresolved(f_lo, f_hi)
        return lo, hi, f_lo, f_hi, no_sign_change

    def _solve_node(
        self,
        problem: _NodeProblem,
        voltages: np.ndarray,
        hi_limit: np.ndarray,
    ) -> np.ndarray:
        """Solve one node's KCL across the batch by bracketed root finding."""

        def residual(trial: np.ndarray) -> np.ndarray:
            return self._residual(problem, voltages, trial)

        center = voltages[problem.row]
        lo, hi, f_lo, f_hi, pinned = self._bracket(center, hi_limit, residual)
        # No sign change over the admissible range: pin the node at the
        # endpoint with the smaller residual magnitude (scalar behaviour).
        pinned_values = np.where(np.abs(f_lo) <= np.abs(f_hi), lo, hi)
        return chandrupatla(
            residual,
            lo,
            hi,
            f_lo=f_lo,
            f_hi=f_hi,
            xtol=self.options.xtol,
            frozen=pinned,
            frozen_values=pinned_values,
        )

    # ------------------------------------------------------------------ #
    # supernode (cluster) acceleration
    # ------------------------------------------------------------------ #
    def _solve_clusters(
        self,
        voltages: np.ndarray,
        hi_limit: np.ndarray,
        mid_rail: np.ndarray,
        active: np.ndarray,
        column_mask: np.ndarray,
    ) -> None:
        """Shift conducting clusters as supernodes, per column group.

        The conducting criterion is evaluated per instance (gate voltages —
        and mid-rail itself — differ across the batch), instances are
        grouped by identical conducting patterns, and each group's clusters
        are solved with one vectorized root find over the group's columns
        (a rigid per-column *shift* of the members, like the scalar
        solver's pass).  ``voltages``, ``hi_limit`` and ``mid_rail`` are the
        active-column views, ``column_mask`` selects which of them take the
        pass this sweep, and ``active`` maps active columns back to absolute
        batch columns (needed to slice the packed device parameters).
        """
        if not self._cluster_edges:
            return
        columns = np.flatnonzero(column_mask)
        if columns.size == 0:
            return

        conducting = (
            self._cluster_signs
            * (voltages[self._cluster_gate_rows][:, columns] - mid_rail[columns])
            > 0.0
        )

        # Channel edges never span two potential components, so each
        # component's clusters depend only on its *local* conducting pattern.
        # Grouping columns per component (instead of by the global pattern
        # across all edges) keeps the column groups wide even when every
        # batch instance applies a different input vector — the regime of
        # the batched reference path — while each column still receives
        # exactly its own conducting clusters.  Executing the collected
        # solves in first-member order reproduces the per-column solve order
        # of a global-pattern grouping bit for bit.
        items: list[tuple[int, list[int], np.ndarray]] = []
        for component in self._cluster_components:
            local = conducting[component.edge_indices]
            patterns, inverse = np.unique(local, axis=1, return_inverse=True)
            for pattern_id in range(patterns.shape[1]):
                pattern = patterns[:, pattern_id]
                if not pattern.any():
                    continue
                group = columns[np.flatnonzero(inverse == pattern_id)]
                for members in component.clusters_for(pattern):
                    items.append((members[0], members, group))
        items.sort(key=lambda item: item[0])
        for _first_row, members, group in items:
            self._solve_one_cluster(
                voltages, hi_limit, group, active[group], members,
                self._problems_by_row,
            )

    def _build_cluster_components(self) -> list["_ClusterComponent"]:
        """Connected components of free nodes over *all* channel edges.

        A component is the maximal region a conducting cluster could ever
        cover; the per-sweep clusters are its sub-groups joined by the edges
        that actually conduct (see :meth:`_ClusterComponent.clusters_for`).
        Components are ordered by their first member row.
        """
        parent = {row: row for row in self._free_rows}

        def find(row: int) -> int:
            while parent[row] != row:
                parent[row] = parent[parent[row]]
                row = parent[row]
            return row

        for _gate, drain, source, _sign in self._cluster_edges:
            ra, rb = find(drain), find(source)
            if ra != rb:
                parent[ra] = rb

        rows_by_root: dict[int, list[int]] = {}
        for row in self._free_rows:
            rows_by_root.setdefault(find(row), []).append(row)
        edges_by_root: dict[int, list[int]] = {}
        for index, (_gate, drain, _source, _sign) in enumerate(self._cluster_edges):
            edges_by_root.setdefault(find(drain), []).append(index)
        return [
            _ClusterComponent(
                rows=rows,
                edge_indices=np.array(edges_by_root[root], dtype=int),
                edges=[self._cluster_edges[i] for i in edges_by_root[root]],
            )
            for root, rows in rows_by_root.items()
            if len(rows) > 1
        ]

    def _solve_one_cluster(
        self,
        voltages: np.ndarray,
        hi_limit: np.ndarray,
        group: np.ndarray,
        group_abs: np.ndarray,
        members: list[int],
        problems_by_row: dict[int, _NodeProblem],
    ) -> None:
        member_problems = [
            problems_by_row[row].take_columns(group_abs) for row in members
        ]
        member_rows = np.array(members)
        base = voltages[member_rows][:, group]

        def cluster_residual(delta: np.ndarray) -> np.ndarray:
            trial = voltages[:, group].copy()
            trial[member_rows] = base + delta
            return sum(
                self._residual(problem, trial, base[m] + delta)
                for m, problem in enumerate(member_problems)
            )

        # A rigid shift of the whole cluster; the range keeps every member
        # inside the admissible voltage band.
        lo = self._lo_limit - base.min(axis=0)
        hi = hi_limit[group] - base.max(axis=0)
        f_lo = cluster_residual(lo)
        f_hi = cluster_residual(hi)
        no_sign_change = (f_lo != 0.0) & (f_hi != 0.0) & (f_lo * f_hi > 0.0)
        if no_sign_change.all():
            return
        # Columns without a sign change keep their voltages (scalar solver
        # skips them): a frozen zero shift makes the write-back a no-op.
        shift = chandrupatla(
            cluster_residual,
            lo,
            hi,
            f_lo=f_lo,
            f_hi=f_hi,
            xtol=self.options.xtol,
            frozen=no_sign_change,
            frozen_values=np.zeros(group.shape),
        )
        for m, row in enumerate(members):
            voltages[row, group] = base[m] + shift
