"""Transistor-level netlist representation.

A :class:`TransistorNetlist` is the structure the DC solver operates on.  It
is intentionally small: nodes, four-terminal transistor instances
(:class:`repro.device.mosfet.Mosfet` bound to node names) and ideal current
sources (used by the gate characterization to emulate loading).

Node semantics
--------------
* ``FIXED`` nodes have a prescribed voltage (supply rails, logic-driven
  primary inputs).  The solver never moves them.
* ``FREE`` nodes are solved: gate outputs, internal stack nodes, and any net
  whose voltage the loading effect perturbs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.device.mosfet import Mosfet

#: Conventional rail node names.
GROUND = "gnd"
SUPPLY = "vdd"


class NodeKind(enum.Enum):
    """Whether a node's voltage is prescribed or solved."""

    FIXED = "fixed"
    FREE = "free"


@dataclass
class Node:
    """A circuit node.

    Attributes
    ----------
    name:
        Unique node name.
    kind:
        FIXED (prescribed voltage) or FREE (solved).
    voltage:
        Prescribed voltage for FIXED nodes; initial guess for FREE nodes.
    """

    name: str
    kind: NodeKind
    voltage: float = 0.0


@dataclass(frozen=True)
class TransistorInstance:
    """A transistor bound to netlist nodes.

    Attributes
    ----------
    name:
        Instance name (unique within the netlist).
    mosfet:
        The evaluated device model.
    gate / drain / source / bulk:
        Node names of the four terminals.
    owner:
        Optional tag identifying the logic gate this transistor belongs to;
        analysis aggregates leakage components per owner.
    """

    name: str
    mosfet: Mosfet
    gate: str
    drain: str
    source: str
    bulk: str
    owner: str = ""

    def terminals(self) -> tuple[tuple[str, str], ...]:
        """Return ``(terminal_name, node_name)`` pairs."""
        return (
            ("gate", self.gate),
            ("drain", self.drain),
            ("source", self.source),
            ("bulk", self.bulk),
        )


@dataclass(frozen=True)
class CurrentSource:
    """An ideal current source injecting ``amps`` into ``node``.

    Positive values push conventional current *into* the node (raising the
    voltage of a node that would otherwise sit at ground); negative values
    draw current out of it.  Gate characterization uses these to emulate the
    loading of neighbouring gates (the paper's I_L-IN / I_L-OUT sweeps).
    """

    node: str
    amps: float


@dataclass
class TransistorNetlist:
    """A flat transistor-level netlist.

    The netlist carries its supply voltage so rails can be created eagerly;
    every constructor path goes through :meth:`add_node` /
    :meth:`add_transistor` so the attachment index used by the solver is
    always consistent.
    """

    vdd: float
    nodes: dict[str, Node] = field(default_factory=dict)
    transistors: list[TransistorInstance] = field(default_factory=list)
    current_sources: list[CurrentSource] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        self.add_node(GROUND, fixed_voltage=0.0)
        self.add_node(SUPPLY, fixed_voltage=self.vdd)

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, name: str, fixed_voltage: float | None = None) -> Node:
        """Add (or fetch) a node.

        Parameters
        ----------
        name:
            Node name.  Adding an existing name returns the existing node;
            attempting to change its kind raises ``ValueError``.
        fixed_voltage:
            If given, the node is FIXED at that voltage.
        """
        existing = self.nodes.get(name)
        if existing is not None:
            if fixed_voltage is not None:
                if existing.kind is not NodeKind.FIXED:
                    raise ValueError(f"node {name!r} already exists as a free node")
                if abs(existing.voltage - fixed_voltage) > 1e-12:
                    raise ValueError(
                        f"node {name!r} already fixed at {existing.voltage} V"
                    )
            return existing
        if fixed_voltage is None:
            node = Node(name=name, kind=NodeKind.FREE, voltage=0.0)
        else:
            node = Node(name=name, kind=NodeKind.FIXED, voltage=float(fixed_voltage))
        self.nodes[name] = node
        return node

    def fix_node(self, name: str, voltage: float) -> None:
        """Fix an existing node at ``voltage`` (or create it fixed)."""
        node = self.nodes.get(name)
        if node is None:
            self.add_node(name, fixed_voltage=voltage)
            return
        node.kind = NodeKind.FIXED
        node.voltage = float(voltage)

    def free_node(self, name: str, initial_voltage: float = 0.0) -> None:
        """Make an existing node free (solved), keeping an initial guess."""
        node = self.nodes.get(name)
        if node is None:
            node = self.add_node(name)
        node.kind = NodeKind.FREE
        node.voltage = float(initial_voltage)

    def add_transistor(
        self,
        name: str,
        mosfet: Mosfet,
        gate: str,
        drain: str,
        source: str,
        bulk: str,
        owner: str = "",
    ) -> TransistorInstance:
        """Add a transistor instance; referenced nodes are created free."""
        for node_name in (gate, drain, source, bulk):
            self.add_node(node_name)
        instance = TransistorInstance(
            name=name,
            mosfet=mosfet,
            gate=gate,
            drain=drain,
            source=source,
            bulk=bulk,
            owner=owner,
        )
        self.transistors.append(instance)
        return instance

    def add_current_source(self, node: str, amps: float) -> CurrentSource:
        """Add an ideal current source injecting ``amps`` into ``node``."""
        self.add_node(node)
        source = CurrentSource(node=node, amps=float(amps))
        self.current_sources.append(source)
        return source

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def free_nodes(self) -> list[str]:
        """Return the names of all free (solved) nodes."""
        return [n.name for n in self.nodes.values() if n.kind is NodeKind.FREE]

    def fixed_voltages(self) -> dict[str, float]:
        """Return the mapping of fixed node names to their voltages."""
        return {
            n.name: n.voltage
            for n in self.nodes.values()
            if n.kind is NodeKind.FIXED
        }

    def attachments(self) -> dict[str, list[tuple[TransistorInstance, str]]]:
        """Return, per node, the ``(transistor, terminal)`` pairs attached to it."""
        index: dict[str, list[tuple[TransistorInstance, str]]] = {
            name: [] for name in self.nodes
        }
        for transistor in self.transistors:
            for terminal, node_name in transistor.terminals():
                index[node_name].append((transistor, terminal))
        return index

    def injections(self) -> dict[str, float]:
        """Return, per node, the net injected current from ideal sources."""
        totals: dict[str, float] = {}
        for source in self.current_sources:
            totals[source.node] = totals.get(source.node, 0.0) + source.amps
        return totals

    def owners(self) -> list[str]:
        """Return the distinct owner tags in insertion order."""
        seen: dict[str, None] = {}
        for transistor in self.transistors:
            if transistor.owner and transistor.owner not in seen:
                seen[transistor.owner] = None
        return list(seen)

    def validate(self) -> None:
        """Raise ``ValueError`` for structurally broken netlists.

        Checks: duplicate transistor names, dangling current sources, and
        free nodes with no attached device (which would make the KCL system
        singular).
        """
        names = [t.name for t in self.transistors]
        if len(names) != len(set(names)):
            raise ValueError("duplicate transistor instance names in netlist")
        attachment_index = self.attachments()
        for source in self.current_sources:
            if source.node not in self.nodes:
                raise ValueError(f"current source references unknown node {source.node!r}")
        for name in self.free_nodes():
            if not attachment_index[name]:
                raise ValueError(f"free node {name!r} has no attached devices")
