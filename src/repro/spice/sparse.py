"""Sparse linear-algebra backend for the batched damped-Newton solver.

This module implements the ``method="newton-sparse"`` backend of
:func:`repro.spice.newton.solve_newton`.  The dense backend materializes a
``(columns, N, N)`` Jacobian stack — 200 MB per column at N = 5,000 free
nodes, before LAPACK's O(N³) factorization even starts — which makes it a
hard wall at ISCAS scale.  Circuit Jacobians are, however, extremely
sparse: node *i* couples to node *j* only where a transistor touches both,
so the number of structural nonzeros grows linearly with the transistor
count (a handful of entries per row regardless of N).

:class:`SparseNewtonBackend` exploits exactly that:

* **One shared sparsity pattern.**  The scatter triplets that
  :class:`repro.spice.newton._NewtonAssembler` precomputes for the dense
  path (``jac_target`` = flattened ``(fi, fj)`` coordinates,
  ``jac_source`` = flattened device-derivative index) double as COO
  coordinates.  The constructor deduplicates them once into a CSC pattern
  — ``indices``/``indptr`` plus an ``entry_slot`` map taking each device
  triplet to its CSC slot — because the circuit *topology* is shared by
  every Newton iteration and every batch column.  Per iteration only the
  numeric values change: one ``np.add.at`` scatter fills the ``(nnz,
  columns)`` value block for all columns at once.
* **SuperLU per column.**  Each column's matrix is factorized
  independently with :func:`scipy.sparse.linalg.splu` (CSC is SuperLU's
  native layout; the column ordering is recomputed from the same pattern
  with the same fixed ``permc_spec``, so it is identical for every
  column).  Per-column factorization is what preserves the solver's
  bitwise batch-composition invariance — a column's step never depends on
  which other columns share the batch — and exactly singular columns are
  reported through the same ``singular`` flag the dense backend uses, so
  the shared globalization loop hands them to the Gauss–Seidel fallback
  unchanged.

Memory is O(nnz · columns) for the values plus SuperLU's fill-in — on
layered logic netlists a few dozen bytes per transistor per column — so
systems far beyond the dense wall stay cheap.  The trade-off is the
per-column Python-loop factorization, which loses to one batched LAPACK
call on the characterizer's small cells; the ``"auto"`` policy in
:func:`repro.spice.newton.resolve_newton_method` keeps those on the dense
path.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import csc_matrix
from scipy.sparse.linalg import splu

from repro.spice.newton import _NewtonAssembler

#: Fixed SuperLU column-permutation strategy.  Pinning it makes the
#: factorization a pure function of the (shared) sparsity pattern and the
#: column's values, keeping solves reproducible across SciPy defaults.
_PERMC_SPEC = "COLAMD"


class SparseNewtonBackend:
    """CSC/SuperLU backend behind ``method="newton-sparse"``.

    Mirrors the ``steps`` interface of
    :class:`repro.spice.newton._DenseNewtonBackend`; see the module
    docstring for the scheme.
    """

    name = "newton-sparse"

    __slots__ = ("assembler", "nnz", "indices", "indptr", "entry_slot")

    def __init__(self, assembler: _NewtonAssembler) -> None:
        self.assembler = assembler
        n = assembler.n_free
        # jac_target encodes row-major (fi, fj); re-key column-major so the
        # sorted unique keys enumerate entries in CSC order.
        fi = assembler.jac_target // n
        fj = assembler.jac_target % n
        keys, entry_slot = np.unique(fj * n + fi, return_inverse=True)
        self.nnz = int(keys.size)
        self.entry_slot = entry_slot
        self.indices = np.ascontiguousarray(keys % n)  # CSC row indices
        self.indptr = np.searchsorted(
            keys // n, np.arange(n + 1)
        )  # CSC column pointers

    def steps(
        self, packed, voltages: np.ndarray, injection: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One linearization: ``(residual, step, singular)`` per column.

        Same contract as
        :meth:`repro.spice.newton._DenseNewtonBackend.steps`: ``residual``
        and ``step`` are ``(N, columns)``, ``singular`` flags columns whose
        factorization failed (their step is 0 and the globalization loop
        routes them to the Gauss–Seidel fallback).
        """
        assembler = self.assembler
        g, d, s, b = (voltages[r] for r in assembler.rows)
        currents, flat = packed.kcl_jacobian_flat(g, d, s, b)
        columns = g.shape[1]

        # Column-major so each column's value vector is contiguous for the
        # zero-copy csc_matrix construction below.
        data = np.zeros((self.nnz, columns), order="F")
        np.add.at(data, self.entry_slot, flat[assembler.jac_source])
        residual = (
            assembler._scatter_currents(currents, g.shape) - injection
        )

        n = assembler.n_free
        step = np.zeros((n, columns))
        singular = np.zeros(columns, dtype=bool)
        for k in range(columns):
            values = data[:, k]
            if not np.isfinite(values).all():
                singular[k] = True
                continue
            matrix = csc_matrix(
                (values, self.indices, self.indptr), shape=(n, n)
            )
            try:
                step[:, k] = splu(matrix, permc_spec=_PERMC_SPEC).solve(
                    -residual[:, k]
                )
            except RuntimeError:  # SuperLU: factor is exactly singular
                singular[k] = True
        return residual, step, singular
