"""Post-solve analysis: leakage components per transistor, per gate, per circuit.

Once the DC solver has produced an :class:`~repro.spice.solver.OperatingPoint`
this module re-evaluates every transistor at the solved voltages and
aggregates the component magnitudes the paper reports:

* ``subthreshold`` — channel current of transistors operating below threshold,
* ``gate`` — total gate direct-tunneling magnitude,
* ``btbt`` — total junction band-to-band-tunneling magnitude.

Aggregation happens per *owner* (the logic-gate tag recorded on each
transistor instance), which is what lets the circuit-level experiments compare
the fast estimator against the reference solve gate by gate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.mosfet import MosfetCurrents
from repro.spice.netlist import TransistorNetlist
from repro.spice.solver import OperatingPoint


@dataclass(frozen=True)
class ComponentBreakdown:
    """Leakage split into the paper's three components (amperes)."""

    subthreshold: float = 0.0
    gate: float = 0.0
    btbt: float = 0.0

    @property
    def total(self) -> float:
        """Return the summed leakage current."""
        return self.subthreshold + self.gate + self.btbt

    def __add__(self, other: "ComponentBreakdown") -> "ComponentBreakdown":
        return ComponentBreakdown(
            subthreshold=self.subthreshold + other.subthreshold,
            gate=self.gate + other.gate,
            btbt=self.btbt + other.btbt,
        )

    def scaled(self, factor: float) -> "ComponentBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return ComponentBreakdown(
            subthreshold=self.subthreshold * factor,
            gate=self.gate * factor,
            btbt=self.btbt * factor,
        )

    def component(self, name: str) -> float:
        """Return a component by name (``subthreshold``/``gate``/``btbt``/``total``)."""
        if name == "total":
            return self.total
        if name in ("subthreshold", "gate", "btbt"):
            return getattr(self, name)
        raise KeyError(f"unknown leakage component {name!r}")

    def as_dict(self) -> dict[str, float]:
        """Return the breakdown (including total) as a plain dictionary."""
        return {
            "subthreshold": self.subthreshold,
            "gate": self.gate,
            "btbt": self.btbt,
            "total": self.total,
        }

    def power(self, vdd: float) -> float:
        """Return the static power (W) at supply voltage ``vdd``."""
        return self.total * vdd


def transistor_currents(
    netlist: TransistorNetlist, op: OperatingPoint
) -> dict[str, MosfetCurrents]:
    """Return the solved :class:`MosfetCurrents` of every transistor instance."""
    result: dict[str, MosfetCurrents] = {}
    voltages = op.voltages
    for transistor in netlist.transistors:
        result[transistor.name] = transistor.mosfet.terminal_currents(
            voltages[transistor.gate],
            voltages[transistor.drain],
            voltages[transistor.source],
            voltages[transistor.bulk],
            op.temperature_k,
        )
    return result


def _breakdown_from_currents(currents: MosfetCurrents) -> ComponentBreakdown:
    return ComponentBreakdown(
        subthreshold=currents.i_subthreshold,
        gate=currents.i_gate,
        btbt=currents.i_btbt,
    )


def leakage_by_owner(
    netlist: TransistorNetlist, op: OperatingPoint
) -> dict[str, ComponentBreakdown]:
    """Return the leakage breakdown aggregated per owner (logic gate).

    Transistors without an owner tag are aggregated under the empty-string
    key so nothing is silently dropped.
    """
    per_owner: dict[str, ComponentBreakdown] = {}
    for transistor, currents in zip(
        netlist.transistors, transistor_currents(netlist, op).values()
    ):
        breakdown = _breakdown_from_currents(currents)
        key = transistor.owner
        if key in per_owner:
            per_owner[key] = per_owner[key] + breakdown
        else:
            per_owner[key] = breakdown
    return per_owner


def total_leakage(netlist: TransistorNetlist, op: OperatingPoint) -> ComponentBreakdown:
    """Return the leakage breakdown summed over the whole netlist."""
    total = ComponentBreakdown()
    for currents in transistor_currents(netlist, op).values():
        total = total + _breakdown_from_currents(currents)
    return total


def gate_injection_at_node(
    netlist: TransistorNetlist,
    op: OperatingPoint,
    node: str,
    exclude_owners: set[str] | frozenset[str] = frozenset(),
) -> float:
    """Return the signed gate-tunneling current receivers inject into ``node``.

    This is the paper's loading current seen by the net: the sum of the gate
    terminal currents of every transistor whose *gate* connects to ``node``
    (optionally excluding the transistors of some owners, e.g. the gate under
    study itself).  Positive values mean the receivers inject current into
    the node (which happens when the node sits at logic '0'); negative values
    mean they draw current from it (node at logic '1').
    """
    voltages = op.voltages
    injection = 0.0
    for transistor in netlist.transistors:
        if transistor.gate != node:
            continue
        if transistor.owner in exclude_owners:
            continue
        currents = transistor.mosfet.terminal_currents(
            voltages[transistor.gate],
            voltages[transistor.drain],
            voltages[transistor.source],
            voltages[transistor.bulk],
            op.temperature_k,
        )
        # ``ig`` is the current flowing from the node into the gate terminal;
        # the injection *into* the node is its negation.
        injection -= currents.ig
    return injection
