"""Post-solve analysis: leakage components per transistor, per gate, per circuit.

Once the DC solver has produced an :class:`~repro.spice.solver.OperatingPoint`
this module re-evaluates every transistor at the solved voltages and
aggregates the component magnitudes the paper reports:

* ``subthreshold`` — channel current of transistors operating below threshold,
* ``gate`` — total gate direct-tunneling magnitude,
* ``btbt`` — total junction band-to-band-tunneling magnitude.

Aggregation happens per *owner* (the logic-gate tag recorded on each
transistor instance), which is what lets the circuit-level experiments compare
the fast estimator against the reference solve gate by gate.

Two aggregation paths exist: the scalar one re-evaluates each transistor's
:class:`~repro.device.mosfet.Mosfet` at the solved voltages, while
:func:`batched_leakage_by_owner` sums pre-evaluated ``(T, B)`` component
grids into per-owner ``(B,)`` arrays with one scatter-add pass — the twin
used by :class:`~repro.spice.batched.BatchedDcSolver` for whole-batch
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.device.mosfet import MosfetCurrents
from repro.spice.netlist import TransistorNetlist
from repro.spice.solver import OperatingPoint

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.device.batched import ComponentCurrents


@dataclass(frozen=True)
class ComponentBreakdown:
    """Leakage split into the paper's three components (amperes)."""

    subthreshold: float = 0.0
    gate: float = 0.0
    btbt: float = 0.0

    @property
    def total(self) -> float:
        """Return the summed leakage current."""
        return self.subthreshold + self.gate + self.btbt

    def __add__(self, other: "ComponentBreakdown") -> "ComponentBreakdown":
        return ComponentBreakdown(
            subthreshold=self.subthreshold + other.subthreshold,
            gate=self.gate + other.gate,
            btbt=self.btbt + other.btbt,
        )

    def scaled(self, factor: float) -> "ComponentBreakdown":
        """Return a copy with every component multiplied by ``factor``."""
        return ComponentBreakdown(
            subthreshold=self.subthreshold * factor,
            gate=self.gate * factor,
            btbt=self.btbt * factor,
        )

    def component(self, name: str) -> float:
        """Return a component by name (``subthreshold``/``gate``/``btbt``/``total``)."""
        if name == "total":
            return self.total
        if name in ("subthreshold", "gate", "btbt"):
            return getattr(self, name)
        raise KeyError(f"unknown leakage component {name!r}")

    def as_dict(self) -> dict[str, float]:
        """Return the breakdown (including total) as a plain dictionary."""
        return {
            "subthreshold": self.subthreshold,
            "gate": self.gate,
            "btbt": self.btbt,
            "total": self.total,
        }

    def power(self, vdd: float) -> float:
        """Return the static power (W) at supply voltage ``vdd``."""
        return self.total * vdd


@dataclass(frozen=True)
class BatchedComponentBreakdown:
    """Per-instance leakage components of one owner, as ``(B,)`` arrays."""

    subthreshold: np.ndarray
    gate: np.ndarray
    btbt: np.ndarray

    @property
    def total(self) -> np.ndarray:
        """Return the summed leakage per batch instance."""
        return self.subthreshold + self.gate + self.btbt

    def at(self, index: int) -> ComponentBreakdown:
        """Return instance ``index`` as a scalar :class:`ComponentBreakdown`."""
        return ComponentBreakdown(
            subthreshold=float(self.subthreshold[index]),
            gate=float(self.gate[index]),
            btbt=float(self.btbt[index]),
        )


def owner_slot_ids(owners: Sequence[str]) -> tuple[list[str], np.ndarray]:
    """Return (distinct owners in first-appearance order, per-slot owner ids).

    Transistors without an owner tag map to the empty-string owner, exactly
    like the scalar :func:`leakage_by_owner` — nothing is silently dropped.
    """
    order: list[str] = []
    index: dict[str, int] = {}
    ids = np.empty(len(owners), dtype=np.intp)
    for slot, owner in enumerate(owners):
        key = index.get(owner)
        if key is None:
            key = len(order)
            index[owner] = key
            order.append(owner)
        ids[slot] = key
    return order, ids


def batched_leakage_by_owner(
    owners: Sequence[str],
    components: "ComponentCurrents",
    slot_ids: np.ndarray | None = None,
    owner_order: Sequence[str] | None = None,
) -> dict[str, BatchedComponentBreakdown]:
    """Aggregate ``(T, B)`` component grids per owner in one scatter-add pass.

    Parameters
    ----------
    owners:
        Owner tag of each transistor slot (length ``T``).
    components:
        Component currents of the whole grid, shape ``(T, B)`` per array.
    slot_ids / owner_order:
        Optional pre-computed :func:`owner_slot_ids` result; callers that
        aggregate repeatedly over one topology (the batched solver, chunked
        reference campaigns) hoist the owner indexing out of the hot loop.

    Returns per-owner :class:`BatchedComponentBreakdown` arrays of shape
    ``(B,)``; summation runs in transistor-slot order per owner, matching the
    scalar accumulation order bit for bit.
    """
    if slot_ids is None or owner_order is None:
        owner_order, slot_ids = owner_slot_ids(owners)
    batch = components.i_subthreshold.shape[1]
    sums = np.zeros((3, len(owner_order), batch))
    np.add.at(sums[0], slot_ids, components.i_subthreshold)
    np.add.at(sums[1], slot_ids, components.i_gate)
    np.add.at(sums[2], slot_ids, components.i_btbt)
    return {
        owner: BatchedComponentBreakdown(
            subthreshold=sums[0, key],
            gate=sums[1, key],
            btbt=sums[2, key],
        )
        for key, owner in enumerate(owner_order)
    }


def transistor_currents(
    netlist: TransistorNetlist, op: OperatingPoint
) -> dict[str, MosfetCurrents]:
    """Return the solved :class:`MosfetCurrents` of every transistor instance."""
    result: dict[str, MosfetCurrents] = {}
    voltages = op.voltages
    for transistor in netlist.transistors:
        result[transistor.name] = transistor.mosfet.terminal_currents(
            voltages[transistor.gate],
            voltages[transistor.drain],
            voltages[transistor.source],
            voltages[transistor.bulk],
            op.temperature_k,
        )
    return result


def _breakdown_from_currents(currents: MosfetCurrents) -> ComponentBreakdown:
    return ComponentBreakdown(
        subthreshold=currents.i_subthreshold,
        gate=currents.i_gate,
        btbt=currents.i_btbt,
    )


def leakage_by_owner(
    netlist: TransistorNetlist, op: OperatingPoint
) -> dict[str, ComponentBreakdown]:
    """Return the leakage breakdown aggregated per owner (logic gate).

    Transistors without an owner tag are aggregated under the empty-string
    key so nothing is silently dropped.
    """
    per_owner: dict[str, ComponentBreakdown] = {}
    for transistor, currents in zip(
        netlist.transistors, transistor_currents(netlist, op).values()
    ):
        breakdown = _breakdown_from_currents(currents)
        key = transistor.owner
        if key in per_owner:
            per_owner[key] = per_owner[key] + breakdown
        else:
            per_owner[key] = breakdown
    return per_owner


def total_leakage(netlist: TransistorNetlist, op: OperatingPoint) -> ComponentBreakdown:
    """Return the leakage breakdown summed over the whole netlist."""
    total = ComponentBreakdown()
    for currents in transistor_currents(netlist, op).values():
        total = total + _breakdown_from_currents(currents)
    return total


def gate_injection_at_node(
    netlist: TransistorNetlist,
    op: OperatingPoint,
    node: str,
    exclude_owners: set[str] | frozenset[str] = frozenset(),
) -> float:
    """Return the signed gate-tunneling current receivers inject into ``node``.

    This is the paper's loading current seen by the net: the sum of the gate
    terminal currents of every transistor whose *gate* connects to ``node``
    (optionally excluding the transistors of some owners, e.g. the gate under
    study itself).  Positive values mean the receivers inject current into
    the node (which happens when the node sits at logic '0'); negative values
    mean they draw current from it (node at logic '1').
    """
    voltages = op.voltages
    injection = 0.0
    for transistor in netlist.transistors:
        if transistor.gate != node:
            continue
        if transistor.owner in exclude_owners:
            continue
        currents = transistor.mosfet.terminal_currents(
            voltages[transistor.gate],
            voltages[transistor.drain],
            voltages[transistor.source],
            voltages[transistor.bulk],
            op.temperature_k,
        )
        # ``ig`` is the current flowing from the node into the gate terminal;
        # the injection *into* the node is its negation.
        injection -= currents.ig
    return injection
