"""Batched damped-Newton DC operating-point solver.

This module is the fast path behind
:meth:`repro.spice.batched.BatchedDcSolver.solve` for every method of the
Newton family (``"newton"`` — the default — ``"newton-sparse"`` and
``"auto"``).  Where the Gauss–Seidel sweeps of :mod:`repro.spice.batched`
relax one node at a time — tens to hundreds of sweeps, each performing one
bracketed 1-D root find per free node — the Newton solver treats the whole
free-node Kirchhoff system per batch column at once:

1. evaluate every device of the packed ``(T, B)`` grid *once* to get the
   full residual vector ``F`` and, through the analytic model derivatives
   (:meth:`repro.device.batched.PackedMosfets.kcl_jacobian`), the
   per-column Jacobian ``J``;
2. solve ``J dv = -F`` for all columns;
3. damp the step with a per-column clamp and a per-column backtracking
   (Armijo) line search on the residual 2-norm, then apply it inside the
   admissible voltage band.

Near the solution the iteration converges quadratically, so the whole
solve finishes in ~5–15 iterations from a cold start and 1–4 from a warm
start — against up to ``max_sweeps`` relaxation sweeps at tight
tolerances.

Linear-algebra backends
-----------------------
Steps 1–2 are the only stage whose cost scales super-linearly with the
free-node count, so exactly that stage is abstracted behind a backend
object (one ``steps(packed, voltages, injection)`` call per iteration);
the globalization loop — damping, line search, convergence masking and the
Gauss–Seidel fallback — is shared verbatim by every backend:

* :class:`_DenseNewtonBackend` (``method="newton"``) scatters the device
  Jacobians into dense ``(B, N, N)`` matrices and factorizes them with one
  batched ``np.linalg.solve`` — O(B·N²) memory and O(B·N³) time, unbeatable
  on the small cells of the characterizer, a hard wall at ISCAS scale.  A
  *pre-flight* estimate of the stack (:func:`dense_jacobian_bytes`) is
  checked against ``SolverOptions.newton_dense_memory_limit`` before the
  first allocation and raises :class:`DenseJacobianMemoryError` naming the
  system size and the sparse escape hatch, instead of dying in a bare
  NumPy ``MemoryError`` mid-assembly.
* :class:`repro.spice.sparse.SparseNewtonBackend`
  (``method="newton-sparse"``) assembles the same scatter indices into one
  shared CSC sparsity pattern and factorizes per column with SuperLU —
  O(nnz) memory, near-linear time on circuit matrices.
* ``method="auto"`` resolves to one of the two by free-node count and the
  dense memory estimate (:func:`resolve_newton_method`); the resolved name
  is what :attr:`BatchedOperatingPoint.method` records.

Robustness — the Gauss–Seidel fallback
--------------------------------------
Newton's superlinear speed comes without the bracketed solver's
unconditional robustness, so every failure is handed back, per column, to
the relaxation path: a rank-deficient Jacobian, a non-finite step, a line
search that cannot reduce the residual at any damping (the classic case:
a pinned node whose KCL equation has no root in the admissible band), or
an exhausted iteration budget all mark the column for fallback.  Fallback
columns restart from their *initial* voltages and run the unmodified
Gauss–Seidel sweeps (:meth:`BatchedDcSolver._solve_gauss_seidel` on the
failed column subset), so their results are bitwise identical to a pure
``method="gauss-seidel"`` solve of the same columns.

Batch-composition invariance
----------------------------
Every step of the iteration is per-column masked: residuals and Jacobians
are element-wise in the column axis, ``np.linalg.solve`` factorizes each
stacked matrix independently, the line search tracks one damping factor
per column and accepts each column at its own step, and converged columns
freeze (they are never re-evaluated).  A column's trajectory — and its
solved voltages, bit for bit — is therefore independent of which other
columns share the batch, exactly like the Gauss–Seidel path.  The
characterization, reference-campaign and Monte-Carlo drivers rely on this
to stay reproducible across chunkings and worker counts.
"""

from __future__ import annotations

import numpy as np

from repro.spice.batched import BatchedDcSolver, BatchedOperatingPoint
from repro.spice.solver import SolverOptions

#: Armijo sufficient-decrease constant of the backtracking line search.
_ARMIJO = 1.0e-4


def dense_jacobian_bytes(batch: int, n_free: int) -> int:
    """Bytes of the dense ``(batch, N, N)`` float64 Jacobian stack.

    This is the single allocation that makes ``method="newton"`` quadratic
    in the free-node count; everything else in the solver is O(T·B).
    """
    return int(batch) * int(n_free) * int(n_free) * 8


class DenseJacobianMemoryError(MemoryError):
    """Pre-flight refusal to allocate the dense Newton Jacobian stack.

    Raised *before* the first Newton iteration when
    :func:`dense_jacobian_bytes` exceeds
    :attr:`~repro.spice.solver.SolverOptions.newton_dense_memory_limit`,
    so an over-sized ``method="newton"`` solve fails fast with the system
    dimensions and the sparse escape hatch in the message instead of
    thrashing swap or dying in a bare NumPy ``MemoryError`` mid-assembly.
    ``method="auto"`` never raises this: it resolves such systems to
    ``"newton-sparse"`` instead.
    """


def check_dense_jacobian_memory(
    batch: int, n_free: int, options: SolverOptions
) -> None:
    """Raise :class:`DenseJacobianMemoryError` if the dense stack is too big."""
    needed = dense_jacobian_bytes(batch, n_free)
    limit = options.newton_dense_memory_limit
    if needed > limit:
        raise DenseJacobianMemoryError(
            f"dense Newton Jacobian stack needs {needed / 1e9:.3g} GB "
            f"({batch} batch columns x {n_free} x {n_free} free nodes x "
            f"8 bytes), over the newton_dense_memory_limit of "
            f"{limit / 1e9:.3g} GB; use SolverOptions(method=\"newton-sparse\") "
            f"(or method=\"auto\", which selects it automatically), raise "
            f"newton_dense_memory_limit, or solve fewer columns per batch"
        )


def resolve_newton_method(
    options: SolverOptions, n_free: int, batch: int
) -> str:
    """Resolve a Newton-family ``options.method`` to a concrete backend name.

    ``"newton"`` and ``"newton-sparse"`` resolve to themselves.  ``"auto"``
    picks ``"newton-sparse"`` when the system is large — the free-node
    count reaches
    :attr:`~repro.spice.solver.SolverOptions.newton_sparse_threshold` or
    the dense stack would exceed
    :attr:`~repro.spice.solver.SolverOptions.newton_dense_memory_limit` —
    and the dense backend otherwise, so small cells keep the batched-LAPACK
    fast path bitwise unchanged.
    """
    if options.method == "newton-sparse":
        return "newton-sparse"
    if options.method == "auto" and (
        n_free >= options.newton_sparse_threshold
        or dense_jacobian_bytes(batch, n_free)
        > options.newton_dense_memory_limit
    ):
        return "newton-sparse"
    return "newton"


class _NewtonAssembler:
    """Pre-indexed scatter structures for residual and Jacobian assembly.

    The Gauss–Seidel path indexes devices *per node* (it relaxes one node
    at a time); Newton evaluates the whole transistor grid in one pass, so
    this helper pre-computes the flat scatter indices that take the
    ``(4, T, B)`` terminal currents into the ``(N, B)`` free-node residual
    and the ``(4, 4, T, B)`` device Jacobians into the ``(N * N, B)`` flat
    circuit Jacobian.
    """

    __slots__ = (
        "free_rows",
        "n_free",
        "rows",
        "slots",
        "res_target",
        "res_source",
        "jac_target",
        "jac_source",
        "injection",
    )

    def __init__(self, solver: BatchedDcSolver) -> None:
        rows = solver._transistor_rows  # (4, T) node rows per terminal
        self.rows = rows
        self.slots = rows.shape[1]
        self.free_rows = np.array(solver._free_rows, dtype=int)
        self.n_free = self.free_rows.size
        free_position = {row: k for k, row in enumerate(solver._free_rows)}

        res_target, res_source = [], []
        jac_target, jac_source = [], []
        for i in range(4):
            for t in range(self.slots):
                fi = free_position.get(int(rows[i, t]))
                if fi is None:
                    continue
                res_target.append(fi)
                res_source.append(i * self.slots + t)
                for j in range(4):
                    fj = free_position.get(int(rows[j, t]))
                    if fj is None:
                        continue
                    jac_target.append(fi * self.n_free + fj)
                    jac_source.append((i * 4 + j) * self.slots + t)
        self.res_target = np.array(res_target, dtype=int)
        self.res_source = np.array(res_source, dtype=int)
        self.jac_target = np.array(jac_target, dtype=int)
        self.jac_source = np.array(jac_source, dtype=int)

        # Injections in free-node order; the problems list is built from the
        # same FREE-filtered node iteration as _free_rows.
        assert [p.row for p in solver._problems] == list(solver._free_rows)
        self.injection = np.stack([p.injection for p in solver._problems])

    def _scatter_currents(self, currents, grid_shape) -> np.ndarray:
        stacked = np.stack(
            [np.broadcast_to(c, grid_shape) for c in currents]
        ).reshape(4 * self.slots, grid_shape[1])
        out = np.zeros((self.n_free, grid_shape[1]))
        np.add.at(out, self.res_target, stacked[self.res_source])
        return out

    def residual(self, packed, voltages: np.ndarray, injection) -> np.ndarray:
        """Free-node KCL residuals ``(N, columns)`` at ``voltages``.

        Matches the Gauss–Seidel residual convention: summed terminal
        currents flowing *into* the attached devices, minus the injection.
        """
        g, d, s, b = (voltages[r] for r in self.rows)
        currents = packed.kcl_currents(g, d, s, b)
        return self._scatter_currents(currents, g.shape) - injection

    def jacobian(
        self, packed, voltages: np.ndarray, injection
    ) -> tuple[np.ndarray, np.ndarray]:
        """Residuals and dense circuit Jacobians at ``voltages``.

        Returns ``(residual, matrices)`` with ``residual`` as in
        :meth:`residual` (the device evaluation is shared, not repeated)
        and ``matrices`` of shape ``(columns, N, N)``:
        ``matrices[b, i, j] = dF_i/dV_j`` over the free nodes.
        """
        g, d, s, b = (voltages[r] for r in self.rows)
        currents, flat = packed.kcl_jacobian_flat(g, d, s, b)
        columns = g.shape[1]
        out = np.zeros((self.n_free * self.n_free, columns))
        np.add.at(out, self.jac_target, flat[self.jac_source])
        matrices = np.ascontiguousarray(
            out.reshape(self.n_free, self.n_free, columns).transpose(2, 0, 1)
        )
        residual = self._scatter_currents(currents, g.shape) - injection
        return residual, matrices


def _solve_steps(matrices: np.ndarray, residual: np.ndarray):
    """Solve ``J dv = -F`` per column; returns ``(steps, singular)``.

    ``steps`` has shape ``(N, columns)``; exactly singular columns get a
    zero step and a True ``singular`` flag.  ``np.linalg.solve`` factorizes
    each stacked matrix independently, so a column's step is bitwise
    identical whether it is solved alone or inside a larger stack; the
    per-column retry below (taken only when the batched call trips over a
    singular member) therefore reproduces the non-singular columns exactly.
    """
    columns = matrices.shape[0]
    rhs = -residual.T[..., None]
    singular = np.zeros(columns, dtype=bool)
    try:
        return np.linalg.solve(matrices, rhs)[..., 0].T, singular
    except np.linalg.LinAlgError:
        steps = np.zeros((matrices.shape[1], columns))
        for k in range(columns):
            try:
                steps[:, k] = np.linalg.solve(matrices[k], rhs[k])[:, 0]
            except np.linalg.LinAlgError:
                singular[k] = True
        return steps, singular


class _DenseNewtonBackend:
    """Dense linear-algebra backend behind ``method="newton"``.

    Scatters the device Jacobians into a dense ``(columns, N, N)`` stack
    and factorizes every column in one batched ``np.linalg.solve`` call.
    Construction runs the pre-flight memory check against the *full*
    batch size (the first iteration's allocation), so an over-budget
    system fails before any device evaluation.
    """

    name = "newton"

    def __init__(
        self, assembler: _NewtonAssembler, options: SolverOptions, batch: int
    ) -> None:
        check_dense_jacobian_memory(batch, assembler.n_free, options)
        self.assembler = assembler

    def steps(
        self, packed, voltages: np.ndarray, injection: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """One linearization: ``(residual, step, singular)`` per column.

        ``residual`` is ``(N, columns)`` as in
        :meth:`_NewtonAssembler.residual`, ``step`` is the ``(N, columns)``
        undamped Newton step solving ``J dv = -F``, and ``singular`` flags
        columns whose Jacobian could not be factorized (their step is 0).
        """
        residual, matrices = self.assembler.jacobian(
            packed, voltages, injection
        )
        step, singular = _solve_steps(matrices, residual)
        return residual, step, singular


def solve_newton(
    solver: BatchedDcSolver, voltages: np.ndarray
) -> BatchedOperatingPoint:
    """Damped-Newton solve of ``solver``'s batch, in place on ``voltages``.

    Called by :meth:`BatchedDcSolver.solve` for every Newton-family
    ``options.method`` (``"newton"``, ``"newton-sparse"``, ``"auto"``);
    see the module docstring for the scheme and the backend split.
    ``voltages`` is the full ``(nodes, B)`` initial matrix and is updated
    in place.
    """
    options = solver.options
    batch = solver.batch
    assembler = _NewtonAssembler(solver)
    free = assembler.free_rows
    resolved = resolve_newton_method(options, assembler.n_free, batch)

    converged = np.zeros(batch, dtype=bool)
    failed = np.zeros(batch, dtype=bool)
    iterations = np.zeros(batch, dtype=int)
    max_update = np.full(batch, np.inf)

    if assembler.n_free == 0:
        # No free nodes: nothing to solve (mirrors a zero-update GS sweep).
        converged[:] = True
        max_update[:] = 0.0
    else:
        if resolved == "newton-sparse":
            from repro.spice.sparse import SparseNewtonBackend

            backend: SparseNewtonBackend | _DenseNewtonBackend = (
                SparseNewtonBackend(assembler)
            )
        else:
            backend = _DenseNewtonBackend(assembler, options, batch)

        initial = voltages.copy()  # fallback columns restart from here
        lo_limit = solver._lo_limit

        for iteration in range(1, options.newton_max_iterations + 1):
            active = np.flatnonzero(~converged & ~failed)
            if active.size == 0:
                break
            whole = active.size == batch
            packed = solver.packed if whole else solver.packed.take_columns(active)
            injection = assembler.injection[:, active]
            hi_limit = solver._hi_limit[active]
            v_active = voltages[:, active]

            residual, step, singular = backend.steps(
                packed, v_active, injection
            )
            norm = np.sqrt(np.sum(residual * residual, axis=0))
            bad = singular | ~np.isfinite(step).all(axis=0) | ~np.isfinite(norm)
            step[:, bad] = 0.0
            raw_size = np.abs(step).max(axis=0)

            v_free = v_active[free]
            accepted = np.zeros(active.size, dtype=bool)
            new_free = v_free.copy()

            def line_search(candidate_step, open_mask):
                """Backtracking Armijo search, per column; accepts into
                ``new_free``/``accepted`` (closure state)."""
                alpha = np.ones(active.size)
                for _ in range(options.newton_backtracks + 1):
                    open_cols = np.flatnonzero(open_mask & ~accepted)
                    if open_cols.size == 0:
                        return
                    trial_free = np.clip(
                        v_free[:, open_cols]
                        + alpha[open_cols] * candidate_step[:, open_cols],
                        lo_limit,
                        hi_limit[open_cols],
                    )
                    trial = v_active[:, open_cols].copy()
                    trial[free] = trial_free
                    trial_packed = (
                        packed
                        if open_cols.size == active.size
                        else packed.take_columns(open_cols)
                    )
                    trial_residual = assembler.residual(
                        trial_packed, trial, injection[:, open_cols]
                    )
                    trial_norm = np.sqrt(
                        np.sum(trial_residual * trial_residual, axis=0)
                    )
                    improved = np.isfinite(trial_norm) & (
                        trial_norm
                        <= (1.0 - _ARMIJO * alpha[open_cols]) * norm[open_cols]
                    )
                    taken = open_cols[improved]
                    new_free[:, taken] = trial_free[:, improved]
                    accepted[taken] = True
                    alpha[open_cols[~improved]] *= 0.5

            # Columns whose full Newton step is already below the voltage
            # tolerance are at the root: apply the step without a line
            # search (whose sufficient-decrease test is meaningless at a
            # ~zero residual) and mark them converged.
            small = ~bad & (raw_size < options.voltage_tol)
            if small.any():
                new_free[:, small] = np.clip(
                    v_free[:, small] + step[:, small],
                    lo_limit,
                    hi_limit[small],
                )
                accepted[small] = True

            # First pass: the component-wise clipped step.  Far from the
            # solution this moves every node up to step_limit towards its
            # own target at once — the fastest globalization on the rail-
            # dominated leakage states — but clipping changes the Newton
            # direction, so it is not guaranteed to descend.
            clipped = np.clip(
                step, -options.newton_step_limit, options.newton_step_limit
            )
            line_search(clipped, ~bad & ~small)

            # Rescue pass: columns the clipped direction stranded retry
            # along the *scaled* step (the whole column shrunk so its
            # largest component is step_limit).  A positive multiple of
            # -J^-1 F is always a descent direction for ||F||^2, so this
            # pass succeeds whenever the Jacobian is sound; only genuinely
            # rootless/degenerate columns proceed to the fallback.
            rescue = ~accepted & ~bad & (raw_size > options.newton_step_limit)
            if rescue.any():
                scale = options.newton_step_limit / np.where(
                    raw_size > 0.0, raw_size, 1.0
                )
                line_search(step * scale, rescue)

            applied = np.flatnonzero(accepted)
            absolute = active[applied]
            voltages[np.ix_(free, absolute)] = new_free[:, applied]
            iterations[active] = iteration
            max_update[absolute] = np.abs(
                new_free[:, applied] - v_free[:, applied]
            ).max(axis=0)
            converged[active[small]] = True
            failed[active[~accepted]] = True

        # Whatever is still open after the iteration budget falls back too.
        failed |= ~converged & ~failed

        fallback = failed
        sweeps = np.zeros(batch, dtype=int)
        if fallback.any():
            columns = np.flatnonzero(fallback)
            voltages[:, columns] = initial[:, columns]
            gs_converged, gs_sweeps, gs_update = solver._solve_gauss_seidel(
                voltages, columns=columns
            )
            converged[columns] = gs_converged
            sweeps[columns] = gs_sweeps
            max_update[columns] = gs_update

        return BatchedOperatingPoint(
            node_index=solver.node_index,
            voltages=voltages,
            temperature_k=solver.temperature_k,
            converged=converged,
            sweeps=np.where(fallback, sweeps, iterations),
            max_update=max_update,
            method=resolved,
            newton_iterations=iterations,
            fallback=fallback,
        )

    return BatchedOperatingPoint(
        node_index=solver.node_index,
        voltages=voltages,
        temperature_k=solver.temperature_k,
        converged=converged,
        sweeps=iterations,
        max_update=max_update,
        method=resolved,
        newton_iterations=iterations,
        fallback=failed,
    )
