"""Transistor-level DC operating-point solver (the "SPICE" substrate).

The paper validates its loading-aware estimator against HSPICE.  HSPICE is
not available here, so this package provides the piece of SPICE that leakage
estimation actually needs: a DC operating-point solver over transistor-level
netlists built from the compact models of :mod:`repro.device`.

* :mod:`repro.spice.netlist` — nodes, transistor instances, current sources;
* :mod:`repro.spice.solver` — Gauss–Seidel relaxation with bracketed scalar
  KCL solves per node (robust for weakly coupled leakage networks);
* :mod:`repro.spice.batched` — the batched solver over same-topology
  netlists (characterization grids, Monte-Carlo samples), with the scalar
  solver retained as the cross-check oracle;
* :mod:`repro.spice.newton` — the batched damped-Newton method behind the
  default ``SolverOptions(method="newton")``: analytic device Jacobians,
  dense per-column linear solves, per-column Gauss–Seidel fallback;
* :mod:`repro.spice.analysis` — per-device and per-gate leakage component
  extraction at a solved operating point.

The solver retains every coupling the paper cares about: internal stack nodes
(the stacking effect) and the inter-gate coupling through gate tunneling
currents (the loading effect), because each net's Kirchhoff equation is
solved against the full set of attached transistors.
"""

from repro.spice.netlist import (
    CurrentSource,
    NodeKind,
    TransistorInstance,
    TransistorNetlist,
)
from repro.spice.solver import DcSolver, OperatingPoint, SolverOptions
from repro.spice.batched import (
    BatchedComponentBreakdown,
    BatchedDcSolver,
    BatchedOperatingPoint,
)
from repro.spice.analysis import (
    ComponentBreakdown,
    batched_leakage_by_owner,
    gate_injection_at_node,
    leakage_by_owner,
    total_leakage,
)

__all__ = [
    "CurrentSource",
    "NodeKind",
    "TransistorInstance",
    "TransistorNetlist",
    "DcSolver",
    "OperatingPoint",
    "SolverOptions",
    "BatchedComponentBreakdown",
    "BatchedDcSolver",
    "BatchedOperatingPoint",
    "ComponentBreakdown",
    "batched_leakage_by_owner",
    "gate_injection_at_node",
    "leakage_by_owner",
    "total_leakage",
]
