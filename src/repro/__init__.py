"""repro — loading-effect-aware leakage modeling for nano-scale bulk CMOS.

This library reproduces "Modeling and Analysis of Loading Effect in Leakage
of Nano-Scaled Bulk-CMOS Logic Circuits" (Mukhopadhyay, Bhunia, Roy — DATE
2005).  It provides:

* compact device models of subthreshold, gate-tunneling and junction BTBT
  leakage (:mod:`repro.device`);
* a transistor-level DC operating-point solver that plays the role of SPICE
  (:mod:`repro.spice`);
* a standard-cell-style gate library with loading characterization
  (:mod:`repro.gates`);
* a gate-level circuit substrate with logic simulation, ISCAS ``.bench`` I/O
  and benchmark-circuit generators (:mod:`repro.circuit`);
* the paper's contribution: loading-aware circuit leakage estimation
  (:mod:`repro.core`);
* a batched campaign engine that compiles a circuit + library into flat LUT
  arrays and answers whole vector sets / Monte-Carlo fleets at once
  (:mod:`repro.engine`);
* process-variation Monte-Carlo analysis (:mod:`repro.variation`);
* per-figure experiment drivers (:mod:`repro.experiments`);
* a compile-once / query-many service layer — long-lived estimation
  sessions owning the compile cache, a disk-backed library store and a
  coalescing request front-end (:mod:`repro.service`).

Quickstart
----------
>>> from repro import make_technology, GateLibrary
>>> from repro.circuit.generators import inverter_chain
>>> from repro.core import LoadingAwareEstimator
>>> tech = make_technology("bulk-50nm")
>>> library = GateLibrary(tech)
>>> circuit = inverter_chain(8)
>>> estimator = LoadingAwareEstimator(library)
>>> report = estimator.estimate(circuit, {"in": 0})
>>> report.total > 0
True
"""

from repro.device import (
    DeviceParams,
    DeviceVariant,
    Polarity,
    TechnologyParams,
    make_device,
    make_technology,
)

__version__ = "1.0.0"

__all__ = [
    "DeviceParams",
    "DeviceVariant",
    "Polarity",
    "TechnologyParams",
    "make_device",
    "make_technology",
    "EstimationSession",
    "GateLibrary",
    "LoadingAwareEstimator",
    "ParallelMonteCarlo",
    "compile_circuit",
    "default_session",
    "lint_circuit",
    "preflight_circuit",
    "__version__",
]


def __getattr__(name: str):
    """Lazily expose the higher-level entry points.

    Importing :mod:`repro` should stay cheap; the gate library and estimator
    pull in the characterization machinery only when actually requested.
    """
    if name == "EstimationSession":
        from repro.service import EstimationSession

        return EstimationSession
    if name == "default_session":
        from repro.service import default_session

        return default_session
    if name == "GateLibrary":
        from repro.gates import GateLibrary

        return GateLibrary
    if name == "LoadingAwareEstimator":
        from repro.core import LoadingAwareEstimator

        return LoadingAwareEstimator
    if name == "ParallelMonteCarlo":
        from repro.engine import ParallelMonteCarlo

        return ParallelMonteCarlo
    if name == "compile_circuit":
        from repro.engine import compile_circuit

        return compile_circuit
    if name == "lint_circuit":
        from repro.analysis import lint_circuit

        return lint_circuit
    if name == "preflight_circuit":
        from repro.analysis import preflight_circuit

        return preflight_circuit
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
