"""Transistor-level templates of the gate library.

Each template adds the static-CMOS transistor structure of one gate instance
to a :class:`~repro.spice.netlist.TransistorNetlist`.  The same function
serves two callers:

* the gate characterizer, which instantiates a single gate (plus driver
  inverters) in isolation, and
* the circuit flattener, which expands a whole gate-level netlist into
  transistors for the reference ("SPICE") solve.

Sizing follows the usual static-CMOS practice: transistors in a series stack
are widened by the stack depth so the worst-case drive resistance matches the
inverter.  Internal stack nodes get instance-scoped names so arbitrarily many
instances coexist in one netlist — these internal nodes are exactly where the
stacking effect (Sec. 4 of the paper) emerges from the solver.
"""

from __future__ import annotations

from repro.device.mosfet import Mosfet
from repro.device.params import TechnologyParams
from repro.gates.library import GateSpec, GateType, gate_spec
from repro.spice.netlist import GROUND, SUPPLY, TransistorNetlist


class _GateBuilder:
    """Helper accumulating the transistors of one gate instance."""

    def __init__(
        self,
        netlist: TransistorNetlist,
        technology: TechnologyParams,
        instance: str,
        owner: str,
    ) -> None:
        self.netlist = netlist
        self.technology = technology
        self.instance = instance
        self.owner = owner
        self._counter = 0
        self.internal_nodes: list[str] = []

    def _next_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{self.instance}.{prefix}{self._counter}"

    def internal_node(self, label: str) -> str:
        """Return (and record) an instance-scoped internal node name."""
        name = f"{self.instance}.{label}"
        if name not in self.internal_nodes:
            self.internal_nodes.append(name)
        return name

    def nmos(self, gate: str, drain: str, source: str, width_factor: float = 1.0) -> None:
        """Add an NMOS with bulk tied to ground."""
        device = self.technology.nmos.scaled_width(width_factor)
        self.netlist.add_transistor(
            name=self._next_name("mn"),
            mosfet=Mosfet(device),
            gate=gate,
            drain=drain,
            source=source,
            bulk=GROUND,
            owner=self.owner,
        )

    def pmos(self, gate: str, drain: str, source: str, width_factor: float = 1.0) -> None:
        """Add a PMOS with bulk tied to the supply."""
        device = self.technology.pmos.scaled_width(width_factor)
        self.netlist.add_transistor(
            name=self._next_name("mp"),
            mosfet=Mosfet(device),
            gate=gate,
            drain=drain,
            source=source,
            bulk=SUPPLY,
            owner=self.owner,
        )

    def nmos_series(self, gates: list[str], top: str, bottom: str) -> None:
        """Add an NMOS series stack from ``top`` down to ``bottom``.

        ``gates[0]`` controls the transistor closest to ``top``.  All stack
        transistors are widened by the stack depth.
        """
        width = float(len(gates))
        upper = top
        for index, gate in enumerate(gates):
            lower = (
                bottom
                if index == len(gates) - 1
                else self.internal_node(f"sn{index}")
            )
            self.nmos(gate=gate, drain=upper, source=lower, width_factor=width)
            upper = lower

    def pmos_series(self, gates: list[str], top: str, bottom: str) -> None:
        """Add a PMOS series stack from ``top`` (supply side) to ``bottom``."""
        width = float(len(gates))
        upper = top
        for index, gate in enumerate(gates):
            lower = (
                bottom
                if index == len(gates) - 1
                else self.internal_node(f"sp{index}")
            )
            # For a PMOS the source is the supply-side terminal.
            self.pmos(gate=gate, drain=lower, source=upper, width_factor=width)
            upper = lower

    def nmos_parallel(self, gates: list[str], drain: str, source: str) -> None:
        """Add parallel NMOS devices between ``drain`` and ``source``."""
        for gate in gates:
            self.nmos(gate=gate, drain=drain, source=source)

    def pmos_parallel(self, gates: list[str], drain: str, source: str) -> None:
        """Add parallel PMOS devices between ``drain`` and ``source``."""
        for gate in gates:
            self.pmos(gate=gate, drain=drain, source=source)

    def inverter(self, input_node: str, output_node: str) -> None:
        """Add a minimum-size inverter."""
        self.nmos(gate=input_node, drain=output_node, source=GROUND)
        self.pmos(gate=input_node, drain=output_node, source=SUPPLY)


def _pin_map(spec: GateSpec, pins: dict[str, str]) -> dict[str, str]:
    """Validate and return the pin-to-node mapping for ``spec``."""
    required = set(spec.inputs) | {spec.output}
    missing = required - set(pins)
    if missing:
        raise ValueError(f"{spec.name}: missing pin connections {sorted(missing)}")
    return {pin: pins[pin] for pin in required}


def build_gate_transistors(
    netlist: TransistorNetlist,
    technology: TechnologyParams,
    gate_type: GateType | str,
    instance: str,
    pins: dict[str, str],
    owner: str | None = None,
) -> list[str]:
    """Add the transistor structure of one gate instance to ``netlist``.

    Parameters
    ----------
    netlist:
        Target netlist; rails must belong to the same technology.
    technology:
        Supplies the NMOS/PMOS flavours and their base widths.
    gate_type:
        Library gate type (enum member or name).
    instance:
        Unique instance name; internal nodes and transistor names are scoped
        by it.
    pins:
        Mapping from logical pin names (``a``, ``b``, ..., ``y``) to netlist
        node names.
    owner:
        Owner tag recorded on every transistor (defaults to ``instance``);
        leakage analysis aggregates per owner.

    Returns
    -------
    list[str]
        The instance-internal node names created (stack nodes, internal
        stages).  Callers use them to seed DC-solver initial guesses.
    """
    spec = gate_spec(gate_type)
    nodes = _pin_map(spec, pins)
    builder = _GateBuilder(netlist, technology, instance, owner or instance)
    out = nodes[spec.output]

    gate_type = spec.gate_type
    if gate_type is GateType.INV:
        builder.inverter(nodes["a"], out)
    elif gate_type is GateType.BUF:
        mid = builder.internal_node("mid")
        builder.inverter(nodes["a"], mid)
        builder.inverter(mid, out)
    elif gate_type in (GateType.NAND2, GateType.NAND3, GateType.NAND4):
        input_nodes = [nodes[p] for p in spec.inputs]
        builder.nmos_series(input_nodes, top=out, bottom=GROUND)
        builder.pmos_parallel(input_nodes, drain=out, source=SUPPLY)
    elif gate_type in (GateType.NOR2, GateType.NOR3):
        input_nodes = [nodes[p] for p in spec.inputs]
        builder.nmos_parallel(input_nodes, drain=out, source=GROUND)
        builder.pmos_series(input_nodes, top=SUPPLY, bottom=out)
    elif gate_type in (GateType.AND2, GateType.AND3, GateType.OR2, GateType.OR3):
        _build_two_stage(builder, spec, nodes, out)
    elif gate_type in (GateType.XOR2, GateType.XNOR2):
        _build_xor(builder, spec, nodes, out, invert=gate_type is GateType.XNOR2)
    elif gate_type is GateType.AOI21:
        a, b, c = (nodes[p] for p in spec.inputs)
        mid = builder.internal_node("pdn")
        builder.nmos(gate=a, drain=out, source=mid, width_factor=2.0)
        builder.nmos(gate=b, drain=mid, source=GROUND, width_factor=2.0)
        builder.nmos(gate=c, drain=out, source=GROUND)
        pun_mid = builder.internal_node("pun")
        builder.pmos(gate=a, drain=pun_mid, source=SUPPLY, width_factor=2.0)
        builder.pmos(gate=b, drain=pun_mid, source=SUPPLY, width_factor=2.0)
        builder.pmos(gate=c, drain=out, source=pun_mid, width_factor=2.0)
    elif gate_type is GateType.OAI21:
        a, b, c = (nodes[p] for p in spec.inputs)
        mid = builder.internal_node("pdn")
        builder.nmos(gate=a, drain=mid, source=GROUND, width_factor=2.0)
        builder.nmos(gate=b, drain=mid, source=GROUND, width_factor=2.0)
        builder.nmos(gate=c, drain=out, source=mid, width_factor=2.0)
        pun_mid = builder.internal_node("pun")
        builder.pmos(gate=a, drain=pun_mid, source=SUPPLY, width_factor=2.0)
        builder.pmos(gate=b, drain=out, source=pun_mid, width_factor=2.0)
        builder.pmos(gate=c, drain=out, source=SUPPLY)
    else:  # pragma: no cover - exhaustive over library
        raise NotImplementedError(f"no transistor template for {gate_type}")
    return list(builder.internal_nodes)


def _series_internal_levels(
    labels: list[str],
    on: list[bool],
    top_value: int,
    bottom_value: int,
    float_value: int,
) -> dict[str, int]:
    """Seed levels of the internal nodes of one series stack.

    ``labels`` are the internal node labels from the top of the stack down
    (one fewer than the devices); ``on[i]`` says whether device ``i``
    (top-to-bottom) conducts under the applied input vector.  A node takes
    the bottom (rail) value when every device below it is ON, the top value
    when every device above it is ON, and ``float_value`` when it is cut
    off on both sides (a floating node settles wherever the leakage divider
    puts it; the caller picks a rail-consistent guess).
    """
    levels: dict[str, int] = {}
    for index, label in enumerate(labels):
        if all(on[index + 1 :]):
            levels[label] = bottom_value
        elif all(on[: index + 1]):
            levels[label] = top_value
        else:
            levels[label] = float_value
    return levels


def internal_seed_levels(
    gate_type: GateType | str,
    input_values: tuple[int, ...] | list[int],
    output_value: int,
) -> dict[str, int]:
    """Return the DC seed logic level of every instance-internal node.

    The keys are the bare node labels of :func:`build_gate_transistors`
    (``"stage1"``, ``"sn0"``, ...); callers prefix them with
    ``"{instance}."``.  The level is the rail the node sits at (or nearest
    to) once the gate settles under ``input_values``:

    * two-stage gates (BUF, AND*, OR*) drive their internal stage at the
      *complement* of the gate output;
    * the XOR/XNOR input inverters drive ``a_bar``/``b_bar`` at the
      complement of the respective *input*;
    * a series-stack node follows whichever end of the stack it conducts
      to; a node cut off on both sides floats, and is seeded at the value
      of its output-side end.

    Seeding from these levels instead of a blanket "gate output rail"
    matters to the Newton solver: a wrong-rail seed on an internal stage
    puts a fully-ON stack across the supply, and the resulting mA-scale
    starting residuals are what its damped line search is worst at (the
    relaxation solver's bracketed root finds shrug them off in one sweep).
    """
    spec = gate_spec(gate_type)
    if len(input_values) != len(spec.inputs):
        raise ValueError(
            f"{spec.name} expects {len(spec.inputs)} input values, got "
            f"{len(input_values)}"
        )
    values = [int(v) for v in input_values]
    out = int(output_value)
    gate_type = spec.gate_type

    if gate_type is GateType.BUF:
        return {"mid": 1 - values[0]}
    if gate_type in (GateType.NAND2, GateType.NAND3, GateType.NAND4):
        labels = [f"sn{i}" for i in range(len(values) - 1)]
        return _series_internal_levels(
            labels, [v == 1 for v in values], out, 0, out
        )
    if gate_type in (GateType.NOR2, GateType.NOR3):
        labels = [f"sp{i}" for i in range(len(values) - 1)]
        return _series_internal_levels(
            labels, [v == 0 for v in values], 1, out, out
        )
    if gate_type in (GateType.AND2, GateType.AND3, GateType.OR2, GateType.OR3):
        stage = 1 - out  # the first stage is the inverting twin
        levels = {"stage1": stage}
        labels_needed = len(values) - 1
        if gate_type in (GateType.AND2, GateType.AND3):
            levels.update(
                _series_internal_levels(
                    [f"sn{i}" for i in range(labels_needed)],
                    [v == 1 for v in values],
                    stage,
                    0,
                    stage,
                )
            )
        else:
            levels.update(
                _series_internal_levels(
                    [f"sp{i}" for i in range(labels_needed)],
                    [v == 0 for v in values],
                    1,
                    stage,
                    stage,
                )
            )
        return levels
    if gate_type in (GateType.XOR2, GateType.XNOR2):
        a, b = values
        a_bar, b_bar = 1 - a, 1 - b
        levels = {"a_bar": a_bar, "b_bar": b_bar}
        if gate_type is GateType.XNOR2:
            pun_pairs = [(a, b), (a_bar, b_bar)]
            pdn_pairs = [(a, b_bar), (a_bar, b)]
        else:
            pun_pairs = [(a, b_bar), (a_bar, b)]
            pdn_pairs = [(a, b), (a_bar, b_bar)]
        for index, (g1, g2) in enumerate(pdn_pairs):
            # out -[g1 NMOS]- mid -[g2 NMOS]- gnd
            levels.update(
                _series_internal_levels(
                    [f"pdn{index}"], [g1 == 1, g2 == 1], out, 0, out
                )
            )
        for index, (g1, g2) in enumerate(pun_pairs):
            # supply -[g1 PMOS]- mid -[g2 PMOS]- out
            levels.update(
                _series_internal_levels(
                    [f"pun{index}"], [g1 == 0, g2 == 0], 1, out, out
                )
            )
        return levels
    if gate_type is GateType.AOI21:
        a, b, c = values
        # pdn: out -[a NMOS]- mid -[b NMOS]- gnd
        levels = _series_internal_levels(["pdn"], [a == 1, b == 1], out, 0, out)
        # pun: supply -[a || b PMOS]- mid -[c PMOS]- out
        levels.update(
            _series_internal_levels(
                ["pun"], [a == 0 or b == 0, c == 0], 1, out, out
            )
        )
        return levels
    if gate_type is GateType.OAI21:
        a, b, c = values
        # pdn: gnd -[a || b NMOS]- mid -[c NMOS]- out (top = out side)
        levels = _series_internal_levels(
            ["pdn"], [c == 1, a == 1 or b == 1], out, 0, out
        )
        # pun: supply -[a PMOS]- mid -[b PMOS]- out
        levels.update(
            _series_internal_levels(["pun"], [a == 0, b == 0], 1, out, out)
        )
        return levels
    return {}  # INV and any template without internal nodes


def _build_two_stage(
    builder: _GateBuilder, spec: GateSpec, nodes: dict[str, str], out: str
) -> None:
    """Build AND/OR as the corresponding inverting stage followed by an inverter."""
    gate_type = spec.gate_type
    internal = builder.internal_node("stage1")
    input_nodes = [nodes[p] for p in spec.inputs]
    if gate_type in (GateType.AND2, GateType.AND3):
        builder.nmos_series(input_nodes, top=internal, bottom=GROUND)
        builder.pmos_parallel(input_nodes, drain=internal, source=SUPPLY)
    else:
        builder.nmos_parallel(input_nodes, drain=internal, source=GROUND)
        builder.pmos_series(input_nodes, top=SUPPLY, bottom=internal)
    builder.inverter(internal, out)


def _build_xor(
    builder: _GateBuilder,
    spec: GateSpec,
    nodes: dict[str, str],
    out: str,
    invert: bool,
) -> None:
    """Build a 12-transistor XOR2/XNOR2 (two input inverters + 8T core)."""
    a, b = nodes["a"], nodes["b"]
    a_bar = builder.internal_node("a_bar")
    b_bar = builder.internal_node("b_bar")
    builder.inverter(a, a_bar)
    builder.inverter(b, b_bar)

    if invert:
        # XNOR: output high when a == b.
        pun_pairs = [(a, b_bar), (a_bar, b)]
        pdn_pairs = [(a, b), (a_bar, b_bar)]
        pun_pairs, pdn_pairs = pdn_pairs, pun_pairs
    else:
        # XOR: pull up when a != b, pull down when a == b.
        pun_pairs = [(a, b_bar), (a_bar, b)]
        pdn_pairs = [(a, b), (a_bar, b_bar)]

    for index, (g1, g2) in enumerate(pdn_pairs):
        mid = builder.internal_node(f"pdn{index}")
        builder.nmos(gate=g1, drain=out, source=mid, width_factor=2.0)
        builder.nmos(gate=g2, drain=mid, source=GROUND, width_factor=2.0)
    for index, (g1, g2) in enumerate(pun_pairs):
        mid = builder.internal_node(f"pun{index}")
        builder.pmos(gate=g1, drain=mid, source=SUPPLY, width_factor=2.0)
        builder.pmos(gate=g2, drain=out, source=mid, width_factor=2.0)


def transistor_count(gate_type: GateType | str) -> int:
    """Return the number of transistors the template of ``gate_type`` creates."""
    spec = gate_spec(gate_type)
    gate_type = spec.gate_type
    n = spec.num_inputs
    if gate_type is GateType.INV:
        return 2
    if gate_type is GateType.BUF:
        return 4
    if gate_type in (GateType.NAND2, GateType.NAND3, GateType.NAND4):
        return 2 * n
    if gate_type in (GateType.NOR2, GateType.NOR3):
        return 2 * n
    if gate_type in (GateType.AND2, GateType.AND3, GateType.OR2, GateType.OR3):
        return 2 * n + 2
    if gate_type in (GateType.XOR2, GateType.XNOR2):
        return 12
    if gate_type in (GateType.AOI21, GateType.OAI21):
        return 6
    raise NotImplementedError(f"no transistor template for {gate_type}")
