"""Characterized leakage data structures (the estimator's lookup tables).

The paper's circuit-level algorithm (Fig. 13) takes as input "leakage
components of different gate type, size, loading" — i.e. a characterized
library.  These containers hold that characterization:

* :class:`ResponseCurve` — leakage components of one gate type / input vector
  as a function of a *signed* loading current injected at one pin;
* :class:`GateVectorCharacterization` — the full record for one
  (gate type, input vector): nominal components, nominal node voltages, the
  gate-tunneling current each input pin injects into its net, and one
  response curve per pin (inputs and output).

Lookups use piecewise-linear interpolation with flat extrapolation: loading
currents beyond the characterized range saturate at the outermost
characterized value rather than extrapolating an unphysical trend.  Because a
silent clamp can quietly flat-line the response of a heavily loaded net (a
large-fanout design point outside the Fig. 5-8 sweeps), out-of-range lookups
are governed by a policy: ``"warn"`` (default) clamps but emits a
``ResponseCurveRangeWarning`` once per (curve pin, direction), ``"raise"``
turns the lookup into a ``ValueError``, and ``"clamp"`` restores the silent
behaviour.  The policy can be set per call or process-wide with
:func:`set_extrapolation_policy`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.spice.analysis import ComponentBreakdown

#: Component names stored by every response curve.
COMPONENT_NAMES = ("subthreshold", "gate", "btbt")

#: Valid out-of-range lookup policies.
EXTRAPOLATION_POLICIES = ("clamp", "warn", "raise")

#: Process-wide default policy for out-of-range lookups.
_extrapolation_policy = "warn"

#: (source, direction) pairs already warned about (the "warn once" memory).
#: The source is the curve instance (or an external interpolator's label),
#: so one noisy curve cannot silence warnings for every other gate type.
_warned_ranges: set[tuple] = set()


class ResponseCurveRangeWarning(UserWarning):
    """A loading current exceeded a response curve's characterized range."""


def _range_message(source: str, injection: float, low: float, high: float) -> str:
    return (
        f"loading current {injection:.3e} A at {source} is outside the "
        f"characterized injection range [{low:.3e}, {high:.3e}] A; the "
        "lookup clamps to the outermost characterized value "
        "(re-characterize with a wider injection_grid to cover this loading)"
    )


def _resolve_policy(policy: str | None) -> str:
    if policy is None:
        return _extrapolation_policy
    if policy not in EXTRAPOLATION_POLICIES:
        raise ValueError(
            f"unknown extrapolation policy {policy!r}; "
            f"expected one of {EXTRAPOLATION_POLICIES}"
        )
    return policy


def enforce_injection_range(
    source: str,
    injection: float,
    low: float,
    high: float,
    policy: str | None = None,
    dedup_key: object = None,
) -> None:
    """Apply the out-of-range policy on behalf of an external interpolator.

    The batched campaign engine interpolates baked LUT arrays directly — it
    never goes through :meth:`ResponseCurve.breakdown_at` — so it reports
    its clamped out-of-range lookups here to keep the policy uniform across
    engines.  ``source`` names the offender in the message; ``dedup_key``
    scopes the warn-once memory (defaults to ``source``).
    """
    policy = _resolve_policy(policy)
    if policy == "clamp" or low <= injection <= high:
        return
    message = _range_message(source, injection, low, high)
    if policy == "raise":
        raise ValueError(message)
    key = (dedup_key if dedup_key is not None else source,
           "low" if injection < low else "high")
    if key in _warned_ranges:
        return
    _warned_ranges.add(key)
    warnings.warn(message, ResponseCurveRangeWarning, stacklevel=3)


def set_extrapolation_policy(policy: str) -> str:
    """Set the process-wide out-of-range policy; returns the previous one.

    Also clears the process-wide warn-once memory (used by external
    interpolators such as the batched campaign engine); response curves keep
    their own per-instance memory.
    """
    global _extrapolation_policy
    if policy not in EXTRAPOLATION_POLICIES:
        raise ValueError(
            f"unknown extrapolation policy {policy!r}; "
            f"expected one of {EXTRAPOLATION_POLICIES}"
        )
    previous = _extrapolation_policy
    _extrapolation_policy = policy
    _warned_ranges.clear()
    return previous


@dataclass(frozen=True)
class ResponseCurve:
    """Leakage components versus signed loading current at one pin.

    Attributes
    ----------
    pin:
        Pin name the loading current is injected at (``a``/``b``/... for
        input loading, ``y`` for output loading).
    injections:
        Strictly increasing signed loading currents in amperes (positive =
        current injected into the net).
    subthreshold / gate / btbt:
        Leakage component magnitudes (A) of the characterized gate at each
        injection value.
    """

    pin: str
    injections: np.ndarray
    subthreshold: np.ndarray
    gate: np.ndarray
    btbt: np.ndarray

    def __post_init__(self) -> None:
        injections = np.asarray(self.injections, dtype=float)
        if injections.ndim != 1 or injections.size < 2:
            raise ValueError("a response curve needs at least two injection points")
        if not np.all(np.diff(injections) > 0):
            raise ValueError("injection values must be strictly increasing")
        for name in COMPONENT_NAMES:
            values = np.asarray(getattr(self, name), dtype=float)
            if values.shape != injections.shape:
                raise ValueError(f"component {name!r} length mismatch")
        object.__setattr__(self, "injections", injections)
        object.__setattr__(self, "subthreshold", np.asarray(self.subthreshold, float))
        object.__setattr__(self, "gate", np.asarray(self.gate, float))
        object.__setattr__(self, "btbt", np.asarray(self.btbt, float))
        # Per-instance warn-once memory for out-of-range lookups (kept on
        # the instance so one noisy curve can neither silence other curves
        # nor grow a process-global set).
        object.__setattr__(self, "_range_warned", set())

    def _check_range(self, injection: float, policy: str | None) -> None:
        """Apply the out-of-range policy for a lookup at ``injection``.

        The warn-once memory is scoped per curve instance and direction, so
        an overrun on one gate type's curve does not silence warnings for
        same-named pins of other gate types.
        """
        policy = _resolve_policy(policy)
        low = float(self.injections[0])
        high = float(self.injections[-1])
        if policy == "clamp" or low <= injection <= high:
            return
        message = _range_message(f"pin {self.pin!r}", injection, low, high)
        if policy == "raise":
            raise ValueError(message)
        direction = "low" if injection < low else "high"
        if direction in self._range_warned:
            return
        self._range_warned.add(direction)
        warnings.warn(message, ResponseCurveRangeWarning, stacklevel=4)

    def breakdown_at(
        self, injection: float, policy: str | None = None
    ) -> ComponentBreakdown:
        """Return the interpolated leakage breakdown at ``injection`` amps.

        ``policy`` overrides the process-wide out-of-range policy for this
        lookup (``"clamp"``, ``"warn"`` or ``"raise"``); see the module
        docstring.
        """
        self._check_range(injection, policy)
        return ComponentBreakdown(
            subthreshold=float(np.interp(injection, self.injections, self.subthreshold)),
            gate=float(np.interp(injection, self.injections, self.gate)),
            btbt=float(np.interp(injection, self.injections, self.btbt)),
        )

    def delta_at(
        self,
        injection: float,
        nominal: ComponentBreakdown,
        policy: str | None = None,
    ) -> ComponentBreakdown:
        """Return the loading-induced change relative to ``nominal``."""
        loaded = self.breakdown_at(injection, policy=policy)
        return ComponentBreakdown(
            subthreshold=loaded.subthreshold - nominal.subthreshold,
            gate=loaded.gate - nominal.gate,
            btbt=loaded.btbt - nominal.btbt,
        )

    @property
    def max_injection(self) -> float:
        """Return the largest characterized injection magnitude (A)."""
        return float(max(abs(self.injections[0]), abs(self.injections[-1])))

    def component_matrix(self) -> np.ndarray:
        """Return the curve as a ``(grid, component)`` matrix.

        Columns follow :data:`COMPONENT_NAMES`; the batched campaign engine
        consumes this layout when flattening a library into LUT arrays.
        """
        return np.stack([getattr(self, name) for name in COMPONENT_NAMES], axis=1)


@dataclass(frozen=True)
class GateVectorCharacterization:
    """Characterized leakage record of one (gate type, input vector).

    Attributes
    ----------
    gate_type_name:
        Lowercase gate-type name (kept as a string so the record serializes
        without importing the enum).
    vector:
        The input vector as a tuple of 0/1 values, ordered like the gate's
        input pins.
    nominal:
        Leakage components with no loading (the gate driven by nominal
        drivers, no neighbouring receivers).
    output_voltage:
        Solved output-node voltage at the nominal point (V).
    input_voltages:
        Solved input-net voltages at the nominal point, per pin (V).
    pin_injection:
        Signed gate-tunneling current each *input* pin injects into its
        driving net at the nominal point (A); this is what neighbouring gates
        sum into their loading currents I_L-IN / I_L-OUT.
    responses:
        Response curve per pin (all input pins plus the output pin ``y``).
    """

    gate_type_name: str
    vector: tuple[int, ...]
    nominal: ComponentBreakdown
    output_voltage: float
    input_voltages: dict[str, float]
    pin_injection: dict[str, float]
    responses: dict[str, ResponseCurve] = field(default_factory=dict)

    @property
    def vector_label(self) -> str:
        """Return the paper-style vector string, e.g. ``"01"``."""
        return "".join(str(int(b)) for b in self.vector)

    def nominal_array(self) -> np.ndarray:
        """Return the nominal components as a ``(component,)`` array.

        Ordered like :data:`COMPONENT_NAMES`; used by the batched campaign
        engine when snapshotting a characterized library into flat arrays.
        """
        return np.array(
            [self.nominal.component(name) for name in COMPONENT_NAMES], dtype=float
        )

    def response(self, pin: str) -> ResponseCurve:
        """Return the response curve of ``pin`` (KeyError if not characterized)."""
        return self.responses[pin]

    def leakage_with_loading(
        self, pin_injections: dict[str, float] | None = None
    ) -> ComponentBreakdown:
        """Return the leakage estimate under the given per-pin loading currents.

        The estimate combines per-pin characterized responses additively
        around the nominal point (first-order superposition), which is
        accurate because loading shifts leakage by only a few percent.  Pins
        absent from ``pin_injections`` (or mapped to zero) contribute nothing.
        """
        if not pin_injections:
            return self.nominal
        sub = self.nominal.subthreshold
        gate = self.nominal.gate
        btbt = self.nominal.btbt
        for pin, injection in pin_injections.items():
            if injection == 0.0:
                continue
            curve = self.responses.get(pin)
            if curve is None:
                raise KeyError(
                    f"pin {pin!r} of {self.gate_type_name} has no characterized response"
                )
            delta = curve.delta_at(injection, self.nominal)
            sub += delta.subthreshold
            gate += delta.gate
            btbt += delta.btbt
        return ComponentBreakdown(
            subthreshold=max(sub, 0.0), gate=max(gate, 0.0), btbt=max(btbt, 0.0)
        )

    def loading_effect_percent(
        self, pin_injections: dict[str, float], component: str = "total"
    ) -> float:
        """Return the paper's LD metric (Eqs. 3-5) in percent for a component."""
        nominal = self.nominal.component(component)
        if nominal == 0.0:
            raise ZeroDivisionError(
                f"nominal {component} leakage of {self.gate_type_name} is zero"
            )
        loaded = self.leakage_with_loading(pin_injections).component(component)
        return 100.0 * (loaded - nominal) / nominal
