"""Gate leakage characterization under loading.

This module produces the lookup tables the circuit-level estimator consumes.
For every (gate type, input vector) it builds a small characterization cell:

* the device under test (DUT), built from the transistor templates;
* one nominal-size inverter *driver* per DUT input, so input nets are real
  (finite-conductance) nets whose voltage a loading current can actually
  perturb — exactly the situation of Fig. 1 of the paper;
* the DUT output left floating except for the DUT's own pull network, so an
  injected current perturbs it the same way fanout gate-tunneling does.

The cell is solved with the reference DC solver, once without loading (the
nominal record) and once per (pin, injection) grid point, giving the
per-pin response curves of :class:`~repro.gates.lut.GateVectorCharacterization`.

:class:`GateLibrary` wraps the characterizer with caching so a circuit-level
run characterizes each (gate type, vector) at most once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.device.params import TechnologyParams
from repro.gates.library import GateSpec, GateType, gate_spec
from repro.gates.lut import GateVectorCharacterization, ResponseCurve
from repro.gates.templates import build_gate_transistors
from repro.spice.analysis import (
    ComponentBreakdown,
    gate_injection_at_node,
    leakage_by_owner,
)
from repro.spice.netlist import TransistorNetlist
from repro.spice.solver import DcSolver, OperatingPoint, SolverOptions

#: Owner tag used for the device under test inside characterization cells.
_DUT = "dut"

#: Default signed loading-current grid (A): +/- 3.2 uA covers the 0-3000 nA
#: range of the paper's Fig. 5-8 sweeps with headroom for large fanouts.
DEFAULT_INJECTION_GRID = tuple(np.linspace(-3.2e-6, 3.2e-6, 9))


@dataclass(frozen=True)
class CharacterizationOptions:
    """Options controlling the characterization cells.

    Attributes
    ----------
    injection_grid:
        Signed loading currents (A) characterized at every pin.
    include_drivers:
        When True (default) every DUT input is driven by a nominal inverter;
        when False inputs are ideal rails (no input-loading response — useful
        only for debugging the templates).
    driver_fanout:
        Width multiplier of the driver inverters; 1.0 models a minimum-size
        upstream stage.
    solver:
        DC solver options used for every cell solve.
    """

    injection_grid: tuple[float, ...] = DEFAULT_INJECTION_GRID
    include_drivers: bool = True
    driver_fanout: float = 1.0
    solver: SolverOptions = field(default_factory=SolverOptions)

    def __post_init__(self) -> None:
        grid = tuple(float(x) for x in self.injection_grid)
        if len(grid) < 2:
            raise ValueError("injection_grid needs at least two points")
        if any(b <= a for a, b in zip(grid, grid[1:])):
            raise ValueError("injection_grid must be strictly increasing")
        object.__setattr__(self, "injection_grid", grid)
        if self.driver_fanout <= 0:
            raise ValueError("driver_fanout must be positive")


@dataclass
class CellSolution:
    """Raw result of solving one characterization cell."""

    netlist: TransistorNetlist
    op: OperatingPoint
    dut_breakdown: ComponentBreakdown
    input_nets: dict[str, str]
    output_net: str


class GateCharacterizer:
    """Builds and solves characterization cells for library gates."""

    def __init__(
        self,
        technology: TechnologyParams,
        temperature_k: float | None = None,
        options: CharacterizationOptions | None = None,
    ) -> None:
        self.technology = technology
        self.temperature_k = (
            technology.temperature_k if temperature_k is None else float(temperature_k)
        )
        self.options = options or CharacterizationOptions()

    # ------------------------------------------------------------------ #
    # cell construction and solving
    # ------------------------------------------------------------------ #
    def solve_cell(
        self,
        gate_type: GateType | str,
        vector: tuple[int, ...],
        injections: dict[str, float] | None = None,
    ) -> CellSolution:
        """Build and solve one characterization cell.

        Parameters
        ----------
        gate_type / vector:
            The DUT and its input vector.
        injections:
            Optional loading currents (A) injected at DUT pins; keys are pin
            names (``a``, ``b``, ..., ``y``).
        """
        spec = gate_spec(gate_type)
        vector = self._check_vector(spec, vector)
        injections = dict(injections or {})
        unknown = set(injections) - set(spec.inputs) - {spec.output}
        if unknown:
            raise ValueError(f"unknown pins for {spec.name}: {sorted(unknown)}")

        vdd = self.technology.vdd
        netlist = TransistorNetlist(vdd=vdd)
        pins: dict[str, str] = {}
        input_nets: dict[str, str] = {}
        initial: dict[str, float] = {}

        for pin, bit in zip(spec.inputs, vector):
            net = f"net_{pin}"
            input_nets[pin] = net
            pins[pin] = net
            if self.options.include_drivers:
                drive_in = f"drv_{pin}_in"
                # The driver output must equal the DUT input bit, so the
                # driver input is the complement.
                netlist.add_node(drive_in, fixed_voltage=vdd * (1 - bit))
                netlist.add_node(net)
                self._build_driver(netlist, f"drv_{pin}", drive_in, net)
                initial[net] = vdd * bit
            else:
                netlist.add_node(net, fixed_voltage=vdd * bit)

        output_net = "net_y"
        pins[spec.output] = output_net
        netlist.add_node(output_net)
        output_guess = vdd * spec.evaluate(vector)
        initial[output_net] = output_guess

        internal_nodes = build_gate_transistors(
            netlist, self.technology, spec.gate_type, _DUT, pins, owner=_DUT
        )
        for node in internal_nodes:
            initial[node] = output_guess

        for pin, amps in injections.items():
            if amps == 0.0:
                continue
            net = output_net if pin == spec.output else input_nets[pin]
            netlist.add_current_source(net, amps)

        solver = DcSolver(netlist, self.temperature_k, self.options.solver)
        op = solver.solve(initial_voltages=initial)
        breakdown = leakage_by_owner(netlist, op).get(_DUT, ComponentBreakdown())
        return CellSolution(
            netlist=netlist,
            op=op,
            dut_breakdown=breakdown,
            input_nets=input_nets,
            output_net=output_net,
        )

    def characterize(
        self, gate_type: GateType | str, vector: tuple[int, ...]
    ) -> GateVectorCharacterization:
        """Return the full characterization record for (gate type, vector)."""
        spec = gate_spec(gate_type)
        vector = self._check_vector(spec, vector)
        nominal_cell = self.solve_cell(spec.gate_type, vector)
        nominal = nominal_cell.dut_breakdown

        pin_injection: dict[str, float] = {}
        input_voltages: dict[str, float] = {}
        for pin, net in nominal_cell.input_nets.items():
            input_voltages[pin] = nominal_cell.op.voltage(net)
            pin_injection[pin] = gate_injection_at_node(
                nominal_cell.netlist, nominal_cell.op, net
            )

        responses: dict[str, ResponseCurve] = {}
        characterizable_pins = list(spec.inputs) + [spec.output]
        for pin in characterizable_pins:
            if pin != spec.output and not self.options.include_drivers:
                # With ideal (fixed) inputs an injected current cannot move
                # the input net, so there is no input-loading response.
                continue
            responses[pin] = self._response_curve(spec, vector, pin, nominal)

        return GateVectorCharacterization(
            gate_type_name=spec.name,
            vector=vector,
            nominal=nominal,
            output_voltage=nominal_cell.op.voltage(nominal_cell.output_net),
            input_voltages=input_voltages,
            pin_injection=pin_injection,
            responses=responses,
        )

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _response_curve(
        self,
        spec: GateSpec,
        vector: tuple[int, ...],
        pin: str,
        nominal: ComponentBreakdown,
    ) -> ResponseCurve:
        grid = list(self.options.injection_grid)
        if 0.0 not in grid:
            grid = sorted(grid + [0.0])
        subthreshold, gate, btbt = [], [], []
        for amps in grid:
            if amps == 0.0:
                breakdown = nominal
            else:
                breakdown = self.solve_cell(
                    spec.gate_type, vector, {pin: amps}
                ).dut_breakdown
            subthreshold.append(breakdown.subthreshold)
            gate.append(breakdown.gate)
            btbt.append(breakdown.btbt)
        return ResponseCurve(
            pin=pin,
            injections=np.asarray(grid),
            subthreshold=np.asarray(subthreshold),
            gate=np.asarray(gate),
            btbt=np.asarray(btbt),
        )

    def _build_driver(
        self, netlist: TransistorNetlist, instance: str, input_net: str, output_net: str
    ) -> None:
        from repro.device.mosfet import Mosfet
        from repro.spice.netlist import GROUND, SUPPLY

        fanout = self.options.driver_fanout
        nmos = self.technology.nmos.scaled_width(fanout)
        pmos = self.technology.pmos.scaled_width(fanout)
        netlist.add_transistor(
            name=f"{instance}.mn",
            mosfet=Mosfet(nmos),
            gate=input_net,
            drain=output_net,
            source=GROUND,
            bulk=GROUND,
            owner=f"__{instance}",
        )
        netlist.add_transistor(
            name=f"{instance}.mp",
            mosfet=Mosfet(pmos),
            gate=input_net,
            drain=output_net,
            source=SUPPLY,
            bulk=SUPPLY,
            owner=f"__{instance}",
        )

    @staticmethod
    def _check_vector(spec: GateSpec, vector: tuple[int, ...]) -> tuple[int, ...]:
        vector = tuple(int(bool(b)) for b in vector)
        if len(vector) != spec.num_inputs:
            raise ValueError(
                f"{spec.name} expects {spec.num_inputs} input bits, got {len(vector)}"
            )
        return vector


class GateLibrary:
    """A characterized gate library bound to one technology and temperature.

    The library characterizes lazily: the first request for a
    (gate type, input vector) runs the characterization cells, subsequent
    requests hit the in-memory cache.  :meth:`precharacterize` warms the
    cache for a set of gate types (useful before timing benchmark runs).
    """

    def __init__(
        self,
        technology: TechnologyParams,
        temperature_k: float | None = None,
        options: CharacterizationOptions | None = None,
    ) -> None:
        self.technology = technology
        self.characterizer = GateCharacterizer(technology, temperature_k, options)
        self._cache: dict[tuple[str, tuple[int, ...]], GateVectorCharacterization] = {}

    @property
    def temperature_k(self) -> float:
        """Return the characterization temperature in kelvin."""
        return self.characterizer.temperature_k

    @property
    def vdd(self) -> float:
        """Return the library supply voltage in volts."""
        return self.technology.vdd

    def spec(self, gate_type: GateType | str) -> GateSpec:
        """Return the :class:`GateSpec` for ``gate_type``."""
        return gate_spec(gate_type)

    def characterization(
        self, gate_type: GateType | str, vector: tuple[int, ...]
    ) -> GateVectorCharacterization:
        """Return (characterizing on first use) the record for (type, vector)."""
        spec = gate_spec(gate_type)
        key = (spec.name, tuple(int(bool(b)) for b in vector))
        record = self._cache.get(key)
        if record is None:
            record = self.characterizer.characterize(spec.gate_type, key[1])
            self._cache[key] = record
        return record

    def nominal_leakage(
        self, gate_type: GateType | str, vector: tuple[int, ...]
    ) -> ComponentBreakdown:
        """Return the no-loading leakage breakdown for (type, vector)."""
        return self.characterization(gate_type, vector).nominal

    def pin_injection(
        self, gate_type: GateType | str, vector: tuple[int, ...], pin: str
    ) -> float:
        """Return the signed current pin ``pin`` injects into its driving net (A)."""
        record = self.characterization(gate_type, vector)
        try:
            return record.pin_injection[pin]
        except KeyError as exc:
            raise KeyError(
                f"{record.gate_type_name} has no input pin {pin!r}"
            ) from exc

    def leakage_with_loading(
        self,
        gate_type: GateType | str,
        vector: tuple[int, ...],
        pin_injections: dict[str, float] | None = None,
    ) -> ComponentBreakdown:
        """Return the loading-aware leakage estimate for (type, vector)."""
        return self.characterization(gate_type, vector).leakage_with_loading(
            pin_injections
        )

    def precharacterize(self, gate_types: list[GateType | str]) -> int:
        """Characterize every vector of the given gate types; return the count."""
        count = 0
        for gate_type in gate_types:
            spec = gate_spec(gate_type)
            for vector in spec.all_vectors():
                self.characterization(spec.gate_type, vector)
                count += 1
        return count

    def cached_records(self) -> list[GateVectorCharacterization]:
        """Return every record currently in the cache."""
        return list(self._cache.values())

    def load_records(self, records: list[GateVectorCharacterization]) -> None:
        """Seed the cache with previously characterized records."""
        for record in records:
            key = (record.gate_type_name, tuple(record.vector))
            self._cache[key] = record
