"""Gate leakage characterization under loading.

This module produces the lookup tables the circuit-level estimator consumes.
For every (gate type, input vector) it builds a small characterization cell:

* the device under test (DUT), built from the transistor templates;
* one nominal-size inverter *driver* per DUT input, so input nets are real
  (finite-conductance) nets whose voltage a loading current can actually
  perturb — exactly the situation of Fig. 1 of the paper;
* the DUT output left floating except for the DUT's own pull network, so an
  injected current perturbs it the same way fanout gate-tunneling does.

The cell is solved once without loading (the nominal record) and once per
(pin, injection) grid point, giving the per-pin response curves of
:class:`~repro.gates.lut.GateVectorCharacterization`.  Two solver engines are
available (``CharacterizationOptions.engine``):

* ``"batched"`` (default) — all cells of a (gate type, vector), or of a whole
  gate type, are one :class:`~repro.spice.batched.BatchedDcSolver` call: the
  nominal cells solve first, then every (pin, injection) cell solves in a
  single batch warm-started from its vector's nominal operating point;
* ``"scalar"`` — the original one-:class:`DcSolver`-per-cell path, kept as
  the cross-check oracle for the batched engine.

:class:`GateLibrary` wraps the characterizer with caching so a circuit-level
run characterizes each (gate type, vector) at most once.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.device.params import TechnologyParams
from repro.gates.library import GateSpec, GateType, gate_spec
from repro.gates.lut import GateVectorCharacterization, ResponseCurve
from repro.gates.templates import build_gate_transistors
from repro.spice.analysis import (
    ComponentBreakdown,
    gate_injection_at_node,
    leakage_by_owner,
)
from repro.spice.batched import BatchedDcSolver, BatchedOperatingPoint
from repro.spice.netlist import TransistorNetlist
from repro.spice.solver import DcSolver, OperatingPoint, SolverOptions

#: Owner tag used for the device under test inside characterization cells.
_DUT = "dut"

#: Default signed loading-current grid (A): +/- 3.2 uA covers the 0-3000 nA
#: range of the paper's Fig. 5-8 sweeps with headroom for large fanouts.
DEFAULT_INJECTION_GRID = tuple(np.linspace(-3.2e-6, 3.2e-6, 9))


class CharacterizationConvergenceWarning(UserWarning):
    """A characterization cell's DC solve ended without converging.

    Emitted (once per solve, naming the gate type, the offending vectors
    and the worst final voltage update) when
    :attr:`CharacterizationOptions.on_nonconverged` is ``"warn"`` — the
    default.  A record built from a non-converged operating point can carry
    silently wrong leakage numbers; set ``on_nonconverged="raise"`` to turn
    the condition into a hard error.
    """


@dataclass(frozen=True)
class CharacterizationOptions:
    """Options controlling the characterization cells.

    Attributes
    ----------
    injection_grid:
        Signed loading currents (A) characterized at every pin.
    include_drivers:
        When True (default) every DUT input is driven by a nominal inverter;
        when False inputs are ideal rails (no input-loading response — useful
        only for debugging the templates).
    driver_fanout:
        Width multiplier of the driver inverters; 1.0 models a minimum-size
        upstream stage.
    solver:
        DC solver options used for every cell solve.
    engine:
        ``"batched"`` (default) solves a vector's whole injection grid — or a
        gate type's whole (vector, pin, injection) sweep — as one batched DC
        solve; ``"scalar"`` keeps the original per-cell :class:`DcSolver`
        path as the cross-check oracle.
    on_nonconverged:
        Policy for cell solves that end without converging: ``"warn"``
        (default) emits a :class:`CharacterizationConvergenceWarning` naming
        the gate type, the offending vectors and the worst final voltage
        update; ``"raise"`` turns the condition into a ``RuntimeError``.
        Applies to both engines — a record built from a non-converged
        operating point would otherwise silently carry wrong leakage.
    """

    injection_grid: tuple[float, ...] = DEFAULT_INJECTION_GRID
    include_drivers: bool = True
    driver_fanout: float = 1.0
    solver: SolverOptions = field(default_factory=SolverOptions)
    engine: str = "batched"
    on_nonconverged: str = "warn"

    def __post_init__(self) -> None:
        grid = tuple(float(x) for x in self.injection_grid)
        if len(grid) < 2:
            raise ValueError("injection_grid needs at least two points")
        if any(b <= a for a, b in zip(grid, grid[1:])):
            raise ValueError("injection_grid must be strictly increasing")
        object.__setattr__(self, "injection_grid", grid)
        if self.driver_fanout <= 0:
            raise ValueError("driver_fanout must be positive")
        if self.engine not in ("batched", "scalar"):
            raise ValueError(f"unknown characterization engine {self.engine!r}")
        if self.on_nonconverged not in ("warn", "raise"):
            raise ValueError(
                f"on_nonconverged must be 'warn' or 'raise', "
                f"got {self.on_nonconverged!r}"
            )

    def curve_grid(self) -> list[float]:
        """Return the response-curve abscissae: the grid with 0.0 included.

        Both characterization engines build their :class:`ResponseCurve`
        objects on exactly this grid (the zero point reuses the nominal
        solve), so sharing the construction here keeps their records
        structurally identical.
        """
        grid = list(self.injection_grid)
        if 0.0 not in grid:
            grid = sorted(grid + [0.0])
        return grid


@dataclass
class CellSolution:
    """Raw result of solving one characterization cell."""

    netlist: TransistorNetlist
    op: OperatingPoint
    dut_breakdown: ComponentBreakdown
    input_nets: dict[str, str]
    output_net: str


@dataclass
class _CellBuild:
    """An unsolved characterization cell (shared by both solver engines)."""

    netlist: TransistorNetlist
    initial: dict[str, float]
    input_nets: dict[str, str]
    output_net: str


class GateCharacterizer:
    """Builds and solves characterization cells for library gates."""

    def __init__(
        self,
        technology: TechnologyParams,
        temperature_k: float | None = None,
        options: CharacterizationOptions | None = None,
    ) -> None:
        self.technology = technology
        self.temperature_k = (
            technology.temperature_k if temperature_k is None else float(temperature_k)
        )
        self.options = options or CharacterizationOptions()
        #: Aggregate DC-solve statistics, updated by every cell solve and
        #: read by the benchmarks: the BENCH trajectory tracks convergence
        #: cost (iterations per solve), not just wall clock.  ``iterations``
        #: counts Gauss–Seidel sweeps or Newton iterations, whichever
        #: method solved the cell; ``fallbacks`` counts Newton columns that
        #: were handed to the Gauss–Seidel fallback.  ``methods`` counts the
        #: solved cells per *resolved* backend — dense ``"newton"``,
        #: ``"newton-sparse"`` and ``"gauss-seidel"`` (requested relaxation
        #: plus Newton fallback columns); an ``"auto"`` request never
        #: appears here, only what it resolved to.
        self.solve_stats: dict[str, object] = {
            "method": (
                "gauss-seidel"
                if self.options.engine == "scalar"
                else self.options.solver.method
            ),
            "solves": 0,
            "iterations": 0,
            "max_iterations": 0,
            "fallbacks": 0,
            "methods": {},
        }

    # ------------------------------------------------------------------ #
    # cell construction and solving
    # ------------------------------------------------------------------ #
    def solve_cell(
        self,
        gate_type: GateType | str,
        vector: tuple[int, ...],
        injections: dict[str, float] | None = None,
    ) -> CellSolution:
        """Build and solve one characterization cell.

        Parameters
        ----------
        gate_type / vector:
            The DUT and its input vector.
        injections:
            Optional loading currents (A) injected at DUT pins; keys are pin
            names (``a``, ``b``, ..., ``y``).
        """
        spec = gate_spec(gate_type)
        vector = self._check_vector(spec, vector)
        injections = dict(injections or {})
        unknown = set(injections) - set(spec.inputs) - {spec.output}
        if unknown:
            raise ValueError(f"unknown pins for {spec.name}: {sorted(unknown)}")

        cell = self._build_cell(spec, vector, injections)
        solver = DcSolver(cell.netlist, self.temperature_k, self.options.solver)
        op = solver.solve(initial_voltages=cell.initial)
        self._record_scalar_solve(op)
        if not op.converged:
            detail = f" with injections {injections}" if injections else ""
            self._report_nonconverged(
                f"characterization cell for {spec.name} vector {vector}"
                f"{detail} did not converge within "
                f"{self.options.solver.max_sweeps} sweeps; largest final "
                f"voltage update {op.max_update:.3e} V"
            )
        breakdown = leakage_by_owner(cell.netlist, op).get(_DUT, ComponentBreakdown())
        return CellSolution(
            netlist=cell.netlist,
            op=op,
            dut_breakdown=breakdown,
            input_nets=cell.input_nets,
            output_net=cell.output_net,
        )

    def _build_cell(
        self,
        spec: GateSpec,
        vector: tuple[int, ...],
        injections: dict[str, float],
    ) -> _CellBuild:
        """Build (without solving) one characterization cell."""
        vdd = self.technology.vdd
        netlist = TransistorNetlist(vdd=vdd)
        pins: dict[str, str] = {}
        input_nets: dict[str, str] = {}
        initial: dict[str, float] = {}

        for pin, bit in zip(spec.inputs, vector):
            net = f"net_{pin}"
            input_nets[pin] = net
            pins[pin] = net
            if self.options.include_drivers:
                drive_in = f"drv_{pin}_in"
                # The driver output must equal the DUT input bit, so the
                # driver input is the complement.
                netlist.add_node(drive_in, fixed_voltage=vdd * (1 - bit))
                netlist.add_node(net)
                self._build_driver(netlist, f"drv_{pin}", drive_in, net)
                initial[net] = vdd * bit
            else:
                netlist.add_node(net, fixed_voltage=vdd * bit)

        output_net = "net_y"
        pins[spec.output] = output_net
        netlist.add_node(output_net)
        output_guess = vdd * spec.evaluate(vector)
        initial[output_net] = output_guess

        internal_nodes = build_gate_transistors(
            netlist, self.technology, spec.gate_type, _DUT, pins, owner=_DUT
        )
        for node in internal_nodes:
            initial[node] = output_guess

        for pin, amps in injections.items():
            if amps == 0.0:
                continue
            net = output_net if pin == spec.output else input_nets[pin]
            netlist.add_current_source(net, amps)

        return _CellBuild(
            netlist=netlist,
            initial=initial,
            input_nets=input_nets,
            output_net=output_net,
        )

    def characterize(
        self, gate_type: GateType | str, vector: tuple[int, ...]
    ) -> GateVectorCharacterization:
        """Return the full characterization record for (gate type, vector)."""
        spec = gate_spec(gate_type)
        vector = self._check_vector(spec, vector)
        if self.options.engine == "scalar":
            return self._characterize_scalar(spec, vector)
        return self._characterize_batched(spec, [vector])[vector]

    def characterize_type(
        self,
        gate_type: GateType | str,
        vectors: list[tuple[int, ...]] | None = None,
    ) -> dict[tuple[int, ...], GateVectorCharacterization]:
        """Characterize several vectors of one gate type in one pass.

        With the batched engine this is the fastest path through the
        characterizer: the nominal cells of every vector solve as one batch,
        then the whole (vector, pin, injection) sweep solves as a second
        batch warm-started from the nominal operating points.
        """
        spec = gate_spec(gate_type)
        if vectors is None:
            vectors = spec.all_vectors()
        vectors = [self._check_vector(spec, vector) for vector in vectors]
        if len(set(vectors)) != len(vectors):
            raise ValueError("duplicate vectors in characterize_type")
        if not vectors:
            return {}
        if self.options.engine == "scalar":
            return {
                vector: self._characterize_scalar(spec, vector)
                for vector in vectors
            }
        return self._characterize_batched(spec, vectors)

    def _characterize_scalar(
        self, spec: GateSpec, vector: tuple[int, ...]
    ) -> GateVectorCharacterization:
        """One-cell-at-a-time characterization (the oracle engine)."""
        nominal_cell = self.solve_cell(spec.gate_type, vector)
        nominal = nominal_cell.dut_breakdown

        pin_injection: dict[str, float] = {}
        input_voltages: dict[str, float] = {}
        for pin, net in nominal_cell.input_nets.items():
            input_voltages[pin] = nominal_cell.op.voltage(net)
            pin_injection[pin] = gate_injection_at_node(
                nominal_cell.netlist, nominal_cell.op, net
            )

        responses: dict[str, ResponseCurve] = {}
        for pin in self._characterizable_pins(spec):
            responses[pin] = self._response_curve(spec, vector, pin, nominal)

        return GateVectorCharacterization(
            gate_type_name=spec.name,
            vector=vector,
            nominal=nominal,
            output_voltage=nominal_cell.op.voltage(nominal_cell.output_net),
            input_voltages=input_voltages,
            pin_injection=pin_injection,
            responses=responses,
        )

    def _characterize_batched(
        self, spec: GateSpec, vectors: list[tuple[int, ...]]
    ) -> dict[tuple[int, ...], GateVectorCharacterization]:
        """Characterize ``vectors`` of one gate type with the batched solver.

        Phase one solves the nominal (no-injection) cell of every vector as
        one batch and reads the nominal breakdowns, node voltages and pin
        injections from it.  Phase two builds every (vector, pin, injection)
        cell, warm-starts each from its vector's solved nominal operating
        point, and solves them all as a second batch.
        """
        options = self.options
        grid = options.curve_grid()
        nonzero = [amps for amps in grid if amps != 0.0]
        pins = self._characterizable_pins(spec)

        # Phase one: nominal cells, one column per vector.
        nominal_cells = [self._build_cell(spec, vector, {}) for vector in vectors]
        nominal_solver = BatchedDcSolver(
            [cell.netlist for cell in nominal_cells],
            self.temperature_k,
            options.solver,
        )
        nominal_op = nominal_solver.solve(
            initial_voltages=[cell.initial for cell in nominal_cells]
        )
        self._record_batched_solve(nominal_op)
        self._check_batched_convergence(
            spec, nominal_op, lambda column: f"vector {vectors[column]}"
        )
        nominal_leakage = nominal_solver.leakage_by_owner(nominal_op)[_DUT]
        input_nets = nominal_cells[0].input_nets
        output_net = nominal_cells[0].output_net
        injection_at_pin = {
            pin: nominal_solver.gate_injection_at_node(nominal_op, net)
            for pin, net in input_nets.items()
        }

        # Phase two: the full (vector, pin, injection) sweep in one batch,
        # warm-started from the nominal voltages of each cell's vector.
        tasks = [
            (index, pin, amps)
            for index in range(len(vectors))
            for pin in pins
            for amps in nonzero
        ]
        breakdown_of_task: dict[tuple[int, str, float], ComponentBreakdown] = {}
        if tasks:
            injection_cells = [
                self._build_cell(spec, vectors[index], {pin: amps})
                for index, pin, amps in tasks
            ]
            warm_starts = [
                {
                    name: float(nominal_op.voltages[row, index])
                    for name, row in nominal_op.node_index.items()
                }
                for index, _pin, _amps in tasks
            ]
            injection_solver = BatchedDcSolver(
                [cell.netlist for cell in injection_cells],
                self.temperature_k,
                options.solver,
            )
            injection_op = injection_solver.solve(initial_voltages=warm_starts)
            self._record_batched_solve(injection_op)
            self._check_batched_convergence(
                spec,
                injection_op,
                lambda column: (
                    f"vector {vectors[tasks[column][0]]} pin "
                    f"{tasks[column][1]!r} injection {tasks[column][2]:.2e} A"
                ),
            )
            injection_leakage = injection_solver.leakage_by_owner(injection_op)[_DUT]
            for column, task in enumerate(tasks):
                breakdown_of_task[task] = injection_leakage.at(column)

        records: dict[tuple[int, ...], GateVectorCharacterization] = {}
        for index, vector in enumerate(vectors):
            nominal = nominal_leakage.at(index)
            responses: dict[str, ResponseCurve] = {}
            for pin in pins:
                values = [
                    nominal if amps == 0.0 else breakdown_of_task[(index, pin, amps)]
                    for amps in grid
                ]
                responses[pin] = ResponseCurve(
                    pin=pin,
                    injections=np.asarray(grid),
                    subthreshold=np.array([b.subthreshold for b in values]),
                    gate=np.array([b.gate for b in values]),
                    btbt=np.array([b.btbt for b in values]),
                )
            records[vector] = GateVectorCharacterization(
                gate_type_name=spec.name,
                vector=vector,
                nominal=nominal,
                output_voltage=float(nominal_op.voltage(output_net)[index]),
                input_voltages={
                    pin: float(nominal_op.voltage(net)[index])
                    for pin, net in input_nets.items()
                },
                pin_injection={
                    pin: float(array[index])
                    for pin, array in injection_at_pin.items()
                },
                responses=responses,
            )
        return records

    def _record_scalar_solve(self, op: OperatingPoint) -> None:
        stats = self.solve_stats
        stats["solves"] += 1
        stats["iterations"] += int(op.sweeps)
        stats["max_iterations"] = max(stats["max_iterations"], int(op.sweeps))
        self._count_method("gauss-seidel", 1)

    def _record_batched_solve(self, op: BatchedOperatingPoint) -> None:
        stats = self.solve_stats
        stats["solves"] += int(op.batch)
        stats["iterations"] += int(op.sweeps.sum())
        stats["max_iterations"] = max(
            stats["max_iterations"], int(op.sweeps.max())
        )
        fallbacks = 0 if op.fallback is None else int(op.fallback.sum())
        stats["fallbacks"] += fallbacks
        # Fallback columns were solved by the relaxation path, whatever the
        # requested method; ``op.method`` is already the resolved backend.
        self._count_method("gauss-seidel", fallbacks)
        self._count_method(op.method, int(op.batch) - fallbacks)

    def _count_method(self, method: str, columns: int) -> None:
        if columns <= 0:
            return
        methods = self.solve_stats["methods"]
        assert isinstance(methods, dict)
        methods[method] = methods.get(method, 0) + columns

    def _report_nonconverged(self, message: str) -> None:
        """Apply the ``on_nonconverged`` policy to a convergence failure."""
        if self.options.on_nonconverged == "raise":
            raise RuntimeError(message)
        warnings.warn(message, CharacterizationConvergenceWarning, stacklevel=3)

    def _check_batched_convergence(
        self,
        spec: GateSpec,
        op: BatchedOperatingPoint,
        describe: Callable[[int], str],
    ) -> None:
        """Check a batched solve's per-column convergence flags.

        ``describe`` renders one batch column as a human-readable cell
        identity (vector, pin, injection); the first few offending columns
        are listed so the message stays bounded for wide batches.
        """
        bad = np.flatnonzero(~op.converged)
        if bad.size == 0:
            return
        worst = float(op.max_update[bad].max())
        shown = ", ".join(describe(int(column)) for column in bad[:5])
        if bad.size > 5:
            shown += f", ... ({bad.size - 5} more)"
        self._report_nonconverged(
            f"{bad.size} of {op.batch} characterization cells for "
            f"{spec.name} did not converge (worst final voltage update "
            f"{worst:.3e} V): {shown}"
        )

    def _characterizable_pins(self, spec: GateSpec) -> list[str]:
        """Return the pins a response curve is characterized for.

        With ideal (fixed) inputs an injected current cannot move an input
        net, so only the output pin has a loading response.
        """
        if not self.options.include_drivers:
            return [spec.output]
        return list(spec.inputs) + [spec.output]

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _response_curve(
        self,
        spec: GateSpec,
        vector: tuple[int, ...],
        pin: str,
        nominal: ComponentBreakdown,
    ) -> ResponseCurve:
        grid = self.options.curve_grid()
        subthreshold, gate, btbt = [], [], []
        for amps in grid:
            if amps == 0.0:
                breakdown = nominal
            else:
                breakdown = self.solve_cell(
                    spec.gate_type, vector, {pin: amps}
                ).dut_breakdown
            subthreshold.append(breakdown.subthreshold)
            gate.append(breakdown.gate)
            btbt.append(breakdown.btbt)
        return ResponseCurve(
            pin=pin,
            injections=np.asarray(grid),
            subthreshold=np.asarray(subthreshold),
            gate=np.asarray(gate),
            btbt=np.asarray(btbt),
        )

    def _build_driver(
        self, netlist: TransistorNetlist, instance: str, input_net: str, output_net: str
    ) -> None:
        from repro.device.mosfet import Mosfet
        from repro.spice.netlist import GROUND, SUPPLY

        fanout = self.options.driver_fanout
        nmos = self.technology.nmos.scaled_width(fanout)
        pmos = self.technology.pmos.scaled_width(fanout)
        netlist.add_transistor(
            name=f"{instance}.mn",
            mosfet=Mosfet(nmos),
            gate=input_net,
            drain=output_net,
            source=GROUND,
            bulk=GROUND,
            owner=f"__{instance}",
        )
        netlist.add_transistor(
            name=f"{instance}.mp",
            mosfet=Mosfet(pmos),
            gate=input_net,
            drain=output_net,
            source=SUPPLY,
            bulk=SUPPLY,
            owner=f"__{instance}",
        )

    @staticmethod
    def _check_vector(spec: GateSpec, vector: tuple[int, ...]) -> tuple[int, ...]:
        vector = tuple(int(bool(b)) for b in vector)
        if len(vector) != spec.num_inputs:
            raise ValueError(
                f"{spec.name} expects {spec.num_inputs} input bits, got {len(vector)}"
            )
        return vector


class GateLibrary:
    """A characterized gate library bound to one technology and temperature.

    The library characterizes lazily: the first request for a
    (gate type, input vector) runs the characterization cells, subsequent
    requests hit the in-memory cache.  :meth:`precharacterize` warms the
    cache for a set of gate types (useful before timing benchmark runs).
    """

    def __init__(
        self,
        technology: TechnologyParams,
        temperature_k: float | None = None,
        options: CharacterizationOptions | None = None,
    ) -> None:
        self.technology = technology
        self.characterizer = GateCharacterizer(technology, temperature_k, options)
        self._cache: dict[tuple[str, tuple[int, ...]], GateVectorCharacterization] = {}

    @property
    def temperature_k(self) -> float:
        """Return the characterization temperature in kelvin."""
        return self.characterizer.temperature_k

    @property
    def vdd(self) -> float:
        """Return the library supply voltage in volts."""
        return self.technology.vdd

    def spec(self, gate_type: GateType | str) -> GateSpec:
        """Return the :class:`GateSpec` for ``gate_type``."""
        return gate_spec(gate_type)

    def characterization(
        self, gate_type: GateType | str, vector: tuple[int, ...]
    ) -> GateVectorCharacterization:
        """Return (characterizing on first use) the record for (type, vector)."""
        spec = gate_spec(gate_type)
        key = (spec.name, tuple(int(bool(b)) for b in vector))
        record = self._cache.get(key)
        if record is None:
            record = self.characterizer.characterize(spec.gate_type, key[1])
            self._cache[key] = record
        return record

    def nominal_leakage(
        self, gate_type: GateType | str, vector: tuple[int, ...]
    ) -> ComponentBreakdown:
        """Return the no-loading leakage breakdown for (type, vector)."""
        return self.characterization(gate_type, vector).nominal

    def pin_injection(
        self, gate_type: GateType | str, vector: tuple[int, ...], pin: str
    ) -> float:
        """Return the signed current pin ``pin`` injects into its driving net (A)."""
        record = self.characterization(gate_type, vector)
        try:
            return record.pin_injection[pin]
        except KeyError as exc:
            raise KeyError(
                f"{record.gate_type_name} has no input pin {pin!r}"
            ) from exc

    def leakage_with_loading(
        self,
        gate_type: GateType | str,
        vector: tuple[int, ...],
        pin_injections: dict[str, float] | None = None,
    ) -> ComponentBreakdown:
        """Return the loading-aware leakage estimate for (type, vector)."""
        return self.characterization(gate_type, vector).leakage_with_loading(
            pin_injections
        )

    def precharacterize(self, gate_types: list[GateType | str]) -> int:
        """Characterize every vector of the given gate types; return the count.

        Uncached vectors of a gate type are characterized together through
        :meth:`GateCharacterizer.characterize_type`, so with the batched
        engine a whole type costs two batched DC solves.
        """
        count = 0
        for gate_type in gate_types:
            spec = gate_spec(gate_type)
            missing = [
                vector
                for vector in spec.all_vectors()
                if (spec.name, vector) not in self._cache
            ]
            count += len(spec.all_vectors())
            if not missing:
                continue
            for vector, record in self.characterizer.characterize_type(
                spec.gate_type, missing
            ).items():
                self._cache[(spec.name, vector)] = record
        return count

    def cached_records(self) -> list[GateVectorCharacterization]:
        """Return every record currently in the cache."""
        return list(self._cache.values())

    def load_records(self, records: list[GateVectorCharacterization]) -> None:
        """Seed the cache with previously characterized records."""
        for record in records:
            key = (record.gate_type_name, tuple(record.vector))
            self._cache[key] = record
