"""JSON persistence of characterized gate-leakage records.

Characterizing a full library takes a few seconds of DC solves; persisting
the records lets repeated benchmark runs (and users embedding the estimator
into larger flows) skip re-characterization.  The format is plain JSON so it
is inspectable and diff-able; no attempt is made to be clever about floats.

Cache validity: a record is only reusable when it was characterized under
the *same settings* — the same technology (every device parameter, not just
the name), the same injection grid, driver fanout and solver tolerances.
Each cache file therefore carries a fingerprint of the full
:class:`~repro.device.params.TechnologyParams` and
:class:`~repro.gates.characterize.CharacterizationOptions`, and a strict
load refuses a mismatch instead of silently returning records characterized
under different settings.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.device.params import TechnologyParams
from repro.gates.characterize import CharacterizationOptions, GateLibrary
from repro.gates.lut import GateVectorCharacterization, ResponseCurve
from repro.spice.analysis import ComponentBreakdown

#: Format version written into every cache file.  Version 2 added the
#: settings fingerprint; version-1 files predate it and are refused.
CACHE_FORMAT_VERSION = 2


def _canonical(value: object) -> object:
    """Convert nested dataclasses/enums/tuples to canonical JSON-able types."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            field.name: _canonical(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    if isinstance(value, float) and value != value:  # pragma: no cover - NaN guard
        return "nan"
    return value


def characterization_settings(
    technology: TechnologyParams,
    options: CharacterizationOptions,
    temperature_k: float,
) -> dict[str, object]:
    """Return the canonical settings dictionary a cache is fingerprinted on.

    Contains every input that can change a characterized record: the full
    technology parameter tree (both device flavours), the characterization
    options (injection grid, drivers, solver tolerances, engine) and the
    characterization temperature.  The options are canonicalized by walking
    their dataclass fields recursively, so the nested
    :class:`~repro.spice.solver.SolverOptions` — including ``method`` and
    the Newton knobs — always enters the fingerprint: caches characterized
    by different solver methods are never conflated.
    """
    canonical_options = _canonical(options)
    # The non-convergence *reporting* policy (warn vs raise) can never
    # change a record that was produced — raising only aborts — so it must
    # not fork otherwise-identical caches.
    canonical_options.pop("on_nonconverged", None)
    return {
        "technology": _canonical(technology),
        "options": canonical_options,
        "temperature_k": temperature_k,
    }


def characterization_fingerprint(
    technology: TechnologyParams,
    options: CharacterizationOptions,
    temperature_k: float,
) -> str:
    """Return a stable hex digest of the characterization settings."""
    payload = json.dumps(
        characterization_settings(technology, options, temperature_k),
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def _breakdown_to_dict(breakdown: ComponentBreakdown) -> dict[str, float]:
    return {
        "subthreshold": breakdown.subthreshold,
        "gate": breakdown.gate,
        "btbt": breakdown.btbt,
    }


def _breakdown_from_dict(data: dict[str, float]) -> ComponentBreakdown:
    return ComponentBreakdown(
        subthreshold=float(data["subthreshold"]),
        gate=float(data["gate"]),
        btbt=float(data["btbt"]),
    )


def _curve_to_dict(curve: ResponseCurve) -> dict[str, object]:
    return {
        "pin": curve.pin,
        "injections": [float(x) for x in curve.injections],
        "subthreshold": [float(x) for x in curve.subthreshold],
        "gate": [float(x) for x in curve.gate],
        "btbt": [float(x) for x in curve.btbt],
    }


def _curve_from_dict(data: dict[str, object]) -> ResponseCurve:
    return ResponseCurve(
        pin=str(data["pin"]),
        injections=np.asarray(data["injections"], dtype=float),
        subthreshold=np.asarray(data["subthreshold"], dtype=float),
        gate=np.asarray(data["gate"], dtype=float),
        btbt=np.asarray(data["btbt"], dtype=float),
    )


def record_to_dict(record: GateVectorCharacterization) -> dict[str, object]:
    """Serialize one characterization record to plain JSON types."""
    return {
        "gate_type": record.gate_type_name,
        "vector": list(record.vector),
        "nominal": _breakdown_to_dict(record.nominal),
        "output_voltage": record.output_voltage,
        "input_voltages": dict(record.input_voltages),
        "pin_injection": dict(record.pin_injection),
        "responses": {pin: _curve_to_dict(c) for pin, c in record.responses.items()},
    }


def record_from_dict(data: dict[str, object]) -> GateVectorCharacterization:
    """Deserialize one characterization record."""
    return GateVectorCharacterization(
        gate_type_name=str(data["gate_type"]),
        vector=tuple(int(b) for b in data["vector"]),
        nominal=_breakdown_from_dict(data["nominal"]),
        output_voltage=float(data["output_voltage"]),
        input_voltages={k: float(v) for k, v in dict(data["input_voltages"]).items()},
        pin_injection={k: float(v) for k, v in dict(data["pin_injection"]).items()},
        responses={
            pin: _curve_from_dict(curve)
            for pin, curve in dict(data["responses"]).items()
        },
    )


def _library_settings(library: GateLibrary) -> tuple[dict[str, object], str]:
    options = library.characterizer.options
    settings = characterization_settings(
        library.technology, options, library.temperature_k
    )
    fingerprint = characterization_fingerprint(
        library.technology, options, library.temperature_k
    )
    return settings, fingerprint


def save_library(library: GateLibrary, path: str | Path) -> int:
    """Write every cached record of ``library`` to ``path`` (JSON).

    Alongside the records the file stores the full characterization
    settings (technology parameters, options, temperature) and their
    fingerprint, so a strict load can verify provenance.  Returns the number
    of records written.
    """
    records = library.cached_records()
    settings, fingerprint = _library_settings(library)
    payload = {
        "format_version": CACHE_FORMAT_VERSION,
        "technology": library.technology.name,
        "vdd": library.vdd,
        "temperature_k": library.temperature_k,
        "fingerprint": fingerprint,
        "settings": settings,
        "records": [record_to_dict(record) for record in records],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2))
    return len(records)


def _describe_mismatch(
    stored: dict[str, object], current: dict[str, object]
) -> list[str]:
    """Return the top-level settings sections that differ."""
    mismatches = []
    for key in ("technology", "options", "temperature_k"):
        if stored.get(key) != current.get(key):
            mismatches.append(key)
    return mismatches or ["settings"]


def load_library(library: GateLibrary, path: str | Path, strict: bool = True) -> int:
    """Load records from ``path`` into ``library``'s cache.

    Parameters
    ----------
    strict:
        When True (default) the cache fingerprint must match the library's
        full characterization settings — every technology parameter, the
        injection grid, driver fanout, solver tolerances and engine; any
        mismatch raises ``ValueError`` naming the differing section, so a
        stale cache can never silently supply records characterized under
        different settings.  When False the records are loaded regardless,
        which is only appropriate for exploratory work.

    Returns the number of records loaded.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != CACHE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported cache format version {payload.get('format_version')!r}"
        )
    if strict:
        current_settings, current_fingerprint = _library_settings(library)
        if payload.get("fingerprint") != current_fingerprint:
            mismatches = _describe_mismatch(
                payload.get("settings") or {}, current_settings
            )
            raise ValueError(
                "characterization cache does not match the library "
                f"({', '.join(mismatches)})"
            )
    records = [record_from_dict(item) for item in payload["records"]]
    library.load_records(records)
    return len(records)


class LibraryStore:
    """Fingerprint-keyed on-disk store of characterized libraries.

    One directory holds one cache file per (technology, characterization
    settings) pair, named ``{technology}-g{generation}-{fingerprint16}.json``
    — the fingerprint is the SHA-256 settings digest of
    :func:`characterization_fingerprint`, so records characterized under
    different settings can never be conflated.  The store is safe under
    concurrent multi-process writers: every publish writes to a
    process-unique temporary file and renames it into place (atomic on
    POSIX), so readers only ever see complete, fingerprinted files, and a
    publish merges whatever is on disk first (records are deterministic for
    a fingerprint, so the union monotonically converges to the full record
    set instead of ping-ponging partial per-worker views).

    ``generation`` is a filename salt for cache consumers whose validity
    depends on more than the settings fingerprint — the fingerprint covers
    technology/options/temperature but *not* the model code itself, so a
    persistent store should bump the generation (or wipe the directory)
    when solver or device numerics change.

    Loads are strict-fingerprint with graceful fallback: a missing file, a
    mismatched fingerprint or a torn/corrupt payload loads zero records
    (counted in :attr:`load_failures`) and characterization proceeds as if
    no cache existed — a stale store can never poison a run.
    """

    def __init__(self, directory: str | Path, generation: int = 0) -> None:
        self.directory = Path(directory)
        self.generation = int(generation)
        #: Counters surfaced through ``EstimationSession.stats()``.
        self.loads = 0
        self.load_failures = 0
        self.records_loaded = 0
        self.publishes = 0
        self.records_published = 0

    def path_for(self, library: GateLibrary) -> Path:
        """Return the cache path of ``library``'s settings fingerprint."""
        _, fingerprint = _library_settings(library)
        return self.directory / (
            f"{library.technology.name}-g{self.generation}-{fingerprint[:16]}.json"
        )

    def load(self, library: GateLibrary) -> int:
        """Warm ``library`` from the store; return the record count loaded.

        Only a complete file whose fingerprint matches the library's full
        characterization settings contributes records; anything else
        (missing, mismatched, torn) falls back to zero records loaded.
        """
        count = self._load_silently(library)
        self.loads += 1
        self.records_loaded += count
        return count

    def publish(self, library: GateLibrary) -> int:
        """Publish ``library``'s cached records; return the count written.

        Convergent-union publish: records already on disk under the same
        fingerprint are merged in first (another worker may have published
        records this one never touched), and the file is only rewritten
        when the union actually grew — so the store converges monotonically
        to the full record set under any number of concurrent writers.
        Returns 0 when nothing new was written.
        """
        on_disk = self._load_silently(library)
        records = library.cached_records()
        if len(records) <= on_disk:
            return 0
        path = self.path_for(library)
        tmp = path.with_suffix(f".tmp-{os.getpid()}")
        try:
            save_library(library, tmp)
            tmp.replace(path)
        except OSError:
            # Disk full, permissions, ... — the store is an optimization,
            # never a correctness dependency; leave no partial file behind.
            tmp.unlink(missing_ok=True)
            return 0
        self.publishes += 1
        self.records_published += len(records)
        return len(records)

    def stats(self) -> dict[str, int]:
        """Return the load/publish counters as a plain dict."""
        return {
            "loads": self.loads,
            "load_failures": self.load_failures,
            "records_loaded": self.records_loaded,
            "publishes": self.publishes,
            "records_published": self.records_published,
        }

    def _load_silently(self, library: GateLibrary) -> int:
        """Strict load with graceful fallback; failures count, never raise."""
        path = self.path_for(library)
        if not path.exists():
            return 0
        try:
            return load_library(library, path, strict=True)
        except (ValueError, KeyError, OSError):
            self.load_failures += 1
            return 0
