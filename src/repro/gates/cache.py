"""JSON persistence of characterized gate-leakage records.

Characterizing a full library takes a few seconds of DC solves; persisting
the records lets repeated benchmark runs (and users embedding the estimator
into larger flows) skip re-characterization.  The format is plain JSON so it
is inspectable and diff-able; no attempt is made to be clever about floats.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.gates.characterize import GateLibrary
from repro.gates.lut import GateVectorCharacterization, ResponseCurve
from repro.spice.analysis import ComponentBreakdown

#: Format version written into every cache file.
CACHE_FORMAT_VERSION = 1


def _breakdown_to_dict(breakdown: ComponentBreakdown) -> dict[str, float]:
    return {
        "subthreshold": breakdown.subthreshold,
        "gate": breakdown.gate,
        "btbt": breakdown.btbt,
    }


def _breakdown_from_dict(data: dict[str, float]) -> ComponentBreakdown:
    return ComponentBreakdown(
        subthreshold=float(data["subthreshold"]),
        gate=float(data["gate"]),
        btbt=float(data["btbt"]),
    )


def _curve_to_dict(curve: ResponseCurve) -> dict[str, object]:
    return {
        "pin": curve.pin,
        "injections": [float(x) for x in curve.injections],
        "subthreshold": [float(x) for x in curve.subthreshold],
        "gate": [float(x) for x in curve.gate],
        "btbt": [float(x) for x in curve.btbt],
    }


def _curve_from_dict(data: dict[str, object]) -> ResponseCurve:
    return ResponseCurve(
        pin=str(data["pin"]),
        injections=np.asarray(data["injections"], dtype=float),
        subthreshold=np.asarray(data["subthreshold"], dtype=float),
        gate=np.asarray(data["gate"], dtype=float),
        btbt=np.asarray(data["btbt"], dtype=float),
    )


def record_to_dict(record: GateVectorCharacterization) -> dict[str, object]:
    """Serialize one characterization record to plain JSON types."""
    return {
        "gate_type": record.gate_type_name,
        "vector": list(record.vector),
        "nominal": _breakdown_to_dict(record.nominal),
        "output_voltage": record.output_voltage,
        "input_voltages": dict(record.input_voltages),
        "pin_injection": dict(record.pin_injection),
        "responses": {pin: _curve_to_dict(c) for pin, c in record.responses.items()},
    }


def record_from_dict(data: dict[str, object]) -> GateVectorCharacterization:
    """Deserialize one characterization record."""
    return GateVectorCharacterization(
        gate_type_name=str(data["gate_type"]),
        vector=tuple(int(b) for b in data["vector"]),
        nominal=_breakdown_from_dict(data["nominal"]),
        output_voltage=float(data["output_voltage"]),
        input_voltages={k: float(v) for k, v in dict(data["input_voltages"]).items()},
        pin_injection={k: float(v) for k, v in dict(data["pin_injection"]).items()},
        responses={
            pin: _curve_from_dict(curve)
            for pin, curve in dict(data["responses"]).items()
        },
    )


def save_library(library: GateLibrary, path: str | Path) -> int:
    """Write every cached record of ``library`` to ``path`` (JSON).

    Returns the number of records written.
    """
    records = library.cached_records()
    payload = {
        "format_version": CACHE_FORMAT_VERSION,
        "technology": library.technology.name,
        "vdd": library.vdd,
        "temperature_k": library.temperature_k,
        "records": [record_to_dict(record) for record in records],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2))
    return len(records)


def load_library(library: GateLibrary, path: str | Path, strict: bool = True) -> int:
    """Load records from ``path`` into ``library``'s cache.

    Parameters
    ----------
    strict:
        When True (default) the cache file must match the library's
        technology name, supply and temperature; a mismatch raises
        ``ValueError``.  When False the records are loaded regardless, which
        is only appropriate for exploratory work.

    Returns the number of records loaded.
    """
    payload = json.loads(Path(path).read_text())
    if payload.get("format_version") != CACHE_FORMAT_VERSION:
        raise ValueError(
            f"unsupported cache format version {payload.get('format_version')!r}"
        )
    if strict:
        mismatches = []
        if payload.get("technology") != library.technology.name:
            mismatches.append("technology")
        if abs(float(payload.get("vdd", -1.0)) - library.vdd) > 1e-9:
            mismatches.append("vdd")
        if abs(float(payload.get("temperature_k", -1.0)) - library.temperature_k) > 1e-9:
            mismatches.append("temperature_k")
        if mismatches:
            raise ValueError(
                f"characterization cache does not match the library ({', '.join(mismatches)})"
            )
    records = [record_from_dict(item) for item in payload["records"]]
    library.load_records(records)
    return len(records)
