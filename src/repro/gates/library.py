"""Logic-gate type definitions.

The gate library mirrors a small standard-cell library: inverter/buffer,
NAND/NOR/AND/OR up to four inputs, XOR/XNOR, and the AOI21/OAI21 complex
gates.  Each :class:`GateSpec` couples a pin interface with a boolean
function; the transistor-level structure lives in
:mod:`repro.gates.templates`.

The split matters for the reproduction: the paper's estimation algorithm
(Fig. 13) works from a *gate-level* description — it propagates logic values,
then looks up characterized leakage per gate type and input vector — so logic
semantics and electrical templates must be independently usable.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Callable, Sequence


class GateType(enum.Enum):
    """Enumerated gate types available in the library."""

    INV = "inv"
    BUF = "buf"
    NAND2 = "nand2"
    NAND3 = "nand3"
    NAND4 = "nand4"
    NOR2 = "nor2"
    NOR3 = "nor3"
    AND2 = "and2"
    AND3 = "and3"
    OR2 = "or2"
    OR3 = "or3"
    XOR2 = "xor2"
    XNOR2 = "xnor2"
    AOI21 = "aoi21"
    OAI21 = "oai21"

    @classmethod
    def from_name(cls, name: str) -> "GateType":
        """Return the gate type for ``name`` (case insensitive)."""
        try:
            return cls(name.lower())
        except ValueError as exc:
            raise KeyError(f"unknown gate type {name!r}") from exc


#: Canonical input pin names, in order.
_INPUT_PINS = ("a", "b", "c", "d")

#: Canonical output pin name.
OUTPUT_PIN = "y"


@dataclass(frozen=True)
class GateSpec:
    """Pin interface and boolean function of a gate type.

    Attributes
    ----------
    gate_type:
        The :class:`GateType` this spec describes.
    inputs:
        Ordered input pin names.
    function:
        Callable mapping a tuple of input bits (0/1) to the output bit.
    description:
        Human-readable logic equation.
    """

    gate_type: GateType
    inputs: tuple[str, ...]
    function: Callable[[tuple[int, ...]], int]
    description: str

    @property
    def name(self) -> str:
        """Return the lowercase gate-type name."""
        return self.gate_type.value

    @property
    def num_inputs(self) -> int:
        """Return the number of input pins."""
        return len(self.inputs)

    @property
    def output(self) -> str:
        """Return the output pin name."""
        return OUTPUT_PIN

    def evaluate(self, bits: Sequence[int]) -> int:
        """Evaluate the gate for ``bits`` (one 0/1 value per input pin)."""
        if len(bits) != self.num_inputs:
            raise ValueError(
                f"{self.name} expects {self.num_inputs} inputs, got {len(bits)}"
            )
        values = tuple(1 if b else 0 for b in bits)
        return 1 if self.function(values) else 0

    def all_vectors(self) -> list[tuple[int, ...]]:
        """Return every input vector of this gate in lexicographic order."""
        return [
            vector for vector in itertools.product((0, 1), repeat=self.num_inputs)
        ]

    def vector_label(self, vector: Sequence[int]) -> str:
        """Return the paper-style string label of a vector, e.g. ``"01"``."""
        return "".join("1" if b else "0" for b in vector)


def _and_all(bits: tuple[int, ...]) -> int:
    return int(all(bits))


def _or_all(bits: tuple[int, ...]) -> int:
    return int(any(bits))


def _spec(
    gate_type: GateType,
    num_inputs: int,
    function: Callable[[tuple[int, ...]], int],
    description: str,
) -> GateSpec:
    return GateSpec(
        gate_type=gate_type,
        inputs=_INPUT_PINS[:num_inputs],
        function=function,
        description=description,
    )


_SPECS: dict[GateType, GateSpec] = {
    GateType.INV: _spec(GateType.INV, 1, lambda b: 1 - b[0], "y = !a"),
    GateType.BUF: _spec(GateType.BUF, 1, lambda b: b[0], "y = a"),
    GateType.NAND2: _spec(GateType.NAND2, 2, lambda b: 1 - _and_all(b), "y = !(a & b)"),
    GateType.NAND3: _spec(GateType.NAND3, 3, lambda b: 1 - _and_all(b), "y = !(a & b & c)"),
    GateType.NAND4: _spec(
        GateType.NAND4, 4, lambda b: 1 - _and_all(b), "y = !(a & b & c & d)"
    ),
    GateType.NOR2: _spec(GateType.NOR2, 2, lambda b: 1 - _or_all(b), "y = !(a | b)"),
    GateType.NOR3: _spec(GateType.NOR3, 3, lambda b: 1 - _or_all(b), "y = !(a | b | c)"),
    GateType.AND2: _spec(GateType.AND2, 2, _and_all, "y = a & b"),
    GateType.AND3: _spec(GateType.AND3, 3, _and_all, "y = a & b & c"),
    GateType.OR2: _spec(GateType.OR2, 2, _or_all, "y = a | b"),
    GateType.OR3: _spec(GateType.OR3, 3, _or_all, "y = a | b | c"),
    GateType.XOR2: _spec(GateType.XOR2, 2, lambda b: b[0] ^ b[1], "y = a ^ b"),
    GateType.XNOR2: _spec(GateType.XNOR2, 2, lambda b: 1 - (b[0] ^ b[1]), "y = !(a ^ b)"),
    GateType.AOI21: _spec(
        GateType.AOI21, 3, lambda b: 1 - ((b[0] & b[1]) | b[2]), "y = !((a & b) | c)"
    ),
    GateType.OAI21: _spec(
        GateType.OAI21, 3, lambda b: 1 - ((b[0] | b[1]) & b[2]), "y = !((a | b) & c)"
    ),
}


def gate_spec(gate_type: GateType | str) -> GateSpec:
    """Return the :class:`GateSpec` of ``gate_type`` (enum member or name)."""
    if isinstance(gate_type, str):
        gate_type = GateType.from_name(gate_type)
    return _SPECS[gate_type]


def all_gate_types() -> list[GateType]:
    """Return every gate type in the library, in declaration order."""
    return list(_SPECS)


def inverting_gate_types() -> list[GateType]:
    """Return the single-stage inverting gate types.

    These are the gates whose output is produced by one pull-up/pull-down
    stage; the non-inverting and XOR-family cells are internally multi-stage.
    """
    return [
        GateType.INV,
        GateType.NAND2,
        GateType.NAND3,
        GateType.NAND4,
        GateType.NOR2,
        GateType.NOR3,
        GateType.AOI21,
        GateType.OAI21,
    ]
