"""Gate library: logic specs, transistor templates, and leakage characterization.

Public entry points:

* :class:`GateType` / :func:`gate_spec` — the logic-level view of the library;
* :func:`build_gate_transistors` — expand a gate instance into transistors;
* :class:`GateLibrary` — characterized leakage lookup (nominal values,
  per-pin loading responses, per-pin gate-tunneling injection currents) used
  by the circuit-level estimator;
* :func:`save_library` / :func:`load_library` — JSON persistence of the
  characterization cache, fingerprinted with the full technology +
  characterization settings so stale records are refused on load;
* :class:`LibraryStore` — a fingerprint-keyed on-disk directory of those
  cache files (atomic write+rename publish, convergent-union merge, safe
  under concurrent multi-process writers) so a fleet of workers shares one
  warm characterization cache;
* :func:`set_extrapolation_policy` — process-wide policy for response-curve
  lookups outside the characterized injection range.
"""

from repro.gates.library import (
    GateSpec,
    GateType,
    all_gate_types,
    gate_spec,
    inverting_gate_types,
)
from repro.gates.templates import build_gate_transistors, transistor_count
from repro.gates.lut import (
    GateVectorCharacterization,
    ResponseCurve,
    ResponseCurveRangeWarning,
    set_extrapolation_policy,
)
from repro.gates.characterize import (
    CharacterizationOptions,
    GateCharacterizer,
    GateLibrary,
)
from repro.gates.cache import (
    LibraryStore,
    characterization_fingerprint,
    load_library,
    save_library,
)

__all__ = [
    "GateSpec",
    "GateType",
    "all_gate_types",
    "gate_spec",
    "inverting_gate_types",
    "build_gate_transistors",
    "transistor_count",
    "GateVectorCharacterization",
    "ResponseCurve",
    "ResponseCurveRangeWarning",
    "set_extrapolation_policy",
    "CharacterizationOptions",
    "GateCharacterizer",
    "GateLibrary",
    "LibraryStore",
    "characterization_fingerprint",
    "load_library",
    "save_library",
]
