"""Compact device models for nano-scale bulk-CMOS leakage.

This package is the substrate that replaces the paper's MEDICI-designed
devices and AURORA-extracted BSIM4 models.  It provides analytical models of
the three dominant leakage mechanisms of a nano-scale bulk MOSFET:

* :mod:`repro.device.subthreshold` — weak-inversion channel conduction with
  DIBL, Vth roll-off, body effect and temperature dependence (an EKV-style
  smooth formulation that also covers the on-state, which the DC solver needs
  to pin driven nodes at the rails);
* :mod:`repro.device.gate_tunneling` — gate direct tunneling split into the
  overlap (Igso/Igdo), gate-to-channel (Igcs/Igcd) and gate-to-bulk (Igb)
  components;
* :mod:`repro.device.btbt` — reverse-biased drain/source-to-substrate junction
  band-to-band tunneling driven by the halo doping.

:class:`repro.device.mosfet.Mosfet` composes the three mechanisms into a
four-terminal element that reports signed terminal currents (for Kirchhoff
solves) plus a per-component breakdown (for leakage reports).
:class:`repro.device.batched.PackedMosfets` is the vectorized twin: it packs
a (transistor-slot x batch-instance) grid of MOSFETs into parameter arrays
and evaluates all of them in one NumPy pass — the device-layer backend of the
batched DC solver.
:mod:`repro.device.presets` provides calibrated 50 nm and 25 nm NMOS/PMOS
devices and the D25-S / D25-G / D25-JN variants used in Section 5.1 of the
paper.
"""

from repro.device.batched import PackedMosfets
from repro.device.params import (
    BtbtParams,
    DeviceParams,
    GateTunnelingParams,
    Polarity,
    SubthresholdParams,
    TechnologyParams,
)
from repro.device.mosfet import Mosfet, MosfetCurrents
from repro.device.presets import (
    DeviceVariant,
    device_pair,
    make_device,
    make_technology,
    variant_description,
)

__all__ = [
    "BtbtParams",
    "DeviceParams",
    "GateTunnelingParams",
    "Polarity",
    "SubthresholdParams",
    "TechnologyParams",
    "Mosfet",
    "MosfetCurrents",
    "PackedMosfets",
    "DeviceVariant",
    "device_pair",
    "make_device",
    "make_technology",
    "variant_description",
]
