"""Calibrated device presets.

The paper's devices were designed in MEDICI at 50 nm drawn gate length (and a
25 nm variant used for the loading-effect figures) with "super-halo" doping
profiles, then extracted into BSIM4 decks with AURORA.  Neither tool is
available here, so the presets below place the compact models of this package
at comparable operating points:

* ``BULK50`` — the 50 nm technology of Sec. 2.1 (VDD = 1.0 V); at room
  temperature the gate tunneling is comparable to (slightly above) the
  subthreshold current and the junction BTBT is a small but visible fraction,
  matching the qualitative picture of Fig. 4(c).
* ``BULK25`` — the 25 nm device used in the inverter/NAND loading figures
  (VDD = 0.9 V); leakier, with a stronger loading response.
* ``D25_S`` / ``D25_G`` / ``D25_JN`` — the Sec. 5.1 variants in which the
  subthreshold, gate, or junction component dominates the total leakage while
  the total stays roughly constant.

The magnitudes are set through the ``jg_ref`` / ``jbtbt_ref`` calibration
points and the per-component scale factors; the bias, geometry and
temperature *sensitivities* come from the physical shape functions and are
shared by all presets.
"""

from __future__ import annotations

import enum

from repro.device.params import (
    BtbtParams,
    DeviceParams,
    GateTunnelingParams,
    Polarity,
    SubthresholdParams,
    TechnologyParams,
)


class DeviceVariant(enum.Enum):
    """Named device/technology variants used by the experiments."""

    BULK50 = "bulk-50nm"
    BULK25 = "bulk-25nm"
    D25_S = "d25-s"
    D25_G = "d25-g"
    D25_JN = "d25-jn"


_DESCRIPTIONS = {
    DeviceVariant.BULK50: "50nm technology of Sec. 2.1 (balanced leakage mix)",
    DeviceVariant.BULK25: "25nm device used in the loading-effect figures",
    DeviceVariant.D25_S: "25nm variant dominated by subthreshold leakage",
    DeviceVariant.D25_G: "25nm variant dominated by gate tunneling leakage",
    DeviceVariant.D25_JN: "25nm variant dominated by junction BTBT leakage",
}


def variant_description(variant: DeviceVariant) -> str:
    """Return a one-line description of a device variant."""
    return _DESCRIPTIONS[variant]


def _nmos_subthreshold_50() -> SubthresholdParams:
    return SubthresholdParams(
        vth0=0.25,
        dibl=0.08,
        body_gamma=0.25,
        phi_s=0.90,
        n_swing=1.40,
        mobility_m2=0.030,
        mobility_temp_exponent=1.5,
        vth_temp_coeff=-7.0e-4,
        sce_tox_coeff=0.15,
        sce_length_coeff=0.004,
        halo_vth_coeff=0.12,
        theta_mobility=5.0,
        tox_ref_nm=1.2,
        length_ref_nm=50.0,
    )


def _pmos_subthreshold_50() -> SubthresholdParams:
    return SubthresholdParams(
        vth0=0.27,
        dibl=0.10,
        body_gamma=0.28,
        phi_s=0.90,
        n_swing=1.50,
        mobility_m2=0.012,
        mobility_temp_exponent=1.2,
        vth_temp_coeff=-6.0e-4,
        sce_tox_coeff=0.15,
        sce_length_coeff=0.005,
        halo_vth_coeff=0.12,
        theta_mobility=5.0,
        tox_ref_nm=1.2,
        length_ref_nm=50.0,
    )


def _gate_tunneling(jg_ref: float, vref: float, tox_ref_nm: float) -> GateTunnelingParams:
    return GateTunnelingParams(
        jg_ref=jg_ref,
        vref=vref,
        tox_ref_nm=tox_ref_nm,
        barrier_ev=3.1,
        b_tox_per_nm=12.0,
        overlap_length_nm=20.0,
        accumulation_factor=0.10,
        gb_fraction=0.05,
        temp_coeff_per_k=5.0e-4,
    )


def _btbt(jbtbt_ref: float, vref: float, halo_cm3: float) -> BtbtParams:
    return BtbtParams(
        jbtbt_ref=jbtbt_ref,
        vref=vref,
        halo_ref_cm3=2.0e18,
        halo_cm3=halo_cm3,
        psi_bi=0.90,
        field_exponent=1.0,
        b_field=12.0,
        junction_depth_nm=30.0,
        bandgap_sensitivity=1.5,
    )


def _bulk50_nmos() -> DeviceParams:
    return DeviceParams(
        name="nmos-50nm",
        polarity=Polarity.NMOS,
        width_nm=300.0,
        length_nm=50.0,
        tox_nm=1.2,
        subthreshold=_nmos_subthreshold_50(),
        gate_tunneling=_gate_tunneling(jg_ref=8.0e-6, vref=1.0, tox_ref_nm=1.2),
        btbt=_btbt(jbtbt_ref=1.0e-6, vref=1.0, halo_cm3=2.0e18),
    )


def _bulk50_pmos() -> DeviceParams:
    return DeviceParams(
        name="pmos-50nm",
        polarity=Polarity.PMOS,
        width_nm=600.0,
        length_nm=50.0,
        tox_nm=1.2,
        subthreshold=_pmos_subthreshold_50(),
        gate_tunneling=_gate_tunneling(jg_ref=2.5e-6, vref=1.0, tox_ref_nm=1.2),
        btbt=_btbt(jbtbt_ref=2.0e-6, vref=1.0, halo_cm3=2.0e18),
    )


def _bulk25_nmos() -> DeviceParams:
    base = _nmos_subthreshold_50()
    sub = SubthresholdParams(
        vth0=0.22,
        dibl=0.10,
        body_gamma=base.body_gamma,
        phi_s=base.phi_s,
        n_swing=1.38,
        mobility_m2=base.mobility_m2,
        mobility_temp_exponent=base.mobility_temp_exponent,
        vth_temp_coeff=base.vth_temp_coeff,
        sce_tox_coeff=0.18,
        sce_length_coeff=0.006,
        halo_vth_coeff=0.12,
        theta_mobility=8.0,
        tox_ref_nm=1.0,
        length_ref_nm=25.0,
    )
    return DeviceParams(
        name="nmos-25nm",
        polarity=Polarity.NMOS,
        width_nm=200.0,
        length_nm=25.0,
        tox_nm=1.0,
        subthreshold=sub,
        gate_tunneling=_gate_tunneling(jg_ref=5.5e-5, vref=0.9, tox_ref_nm=1.0),
        btbt=_btbt(jbtbt_ref=2.0e-6, vref=0.9, halo_cm3=3.0e18),
    )


def _bulk25_pmos() -> DeviceParams:
    base = _pmos_subthreshold_50()
    sub = SubthresholdParams(
        vth0=0.24,
        dibl=0.12,
        body_gamma=base.body_gamma,
        phi_s=base.phi_s,
        n_swing=1.48,
        mobility_m2=base.mobility_m2,
        mobility_temp_exponent=base.mobility_temp_exponent,
        vth_temp_coeff=base.vth_temp_coeff,
        sce_tox_coeff=0.18,
        sce_length_coeff=0.007,
        halo_vth_coeff=0.12,
        theta_mobility=8.0,
        tox_ref_nm=1.0,
        length_ref_nm=25.0,
    )
    return DeviceParams(
        name="pmos-25nm",
        polarity=Polarity.PMOS,
        width_nm=400.0,
        length_nm=25.0,
        tox_nm=1.0,
        subthreshold=sub,
        gate_tunneling=_gate_tunneling(jg_ref=2.0e-5, vref=0.9, tox_ref_nm=1.0),
        btbt=_btbt(jbtbt_ref=4.0e-6, vref=0.9, halo_cm3=3.0e18),
    )


def _apply_dominance(
    device: DeviceParams, isub: float, igate: float, ibtbt: float, suffix: str
) -> DeviceParams:
    """Return a copy of ``device`` with per-component scale factors applied."""
    return device.replace(
        name=f"{device.name}-{suffix}",
        isub_scale=device.isub_scale * isub,
        igate_scale=device.igate_scale * igate,
        ibtbt_scale=device.ibtbt_scale * ibtbt,
    )


def device_pair(variant: DeviceVariant | str) -> tuple[DeviceParams, DeviceParams]:
    """Return the (NMOS, PMOS) pair for a device variant.

    The Sec. 5.1 variants keep the total inverter leakage in the same range
    while moving the dominant component: ``D25_S`` boosts the subthreshold
    current (lower effective Vth), ``D25_G`` boosts gate tunneling and
    suppresses the others, and ``D25_JN`` boosts the junction BTBT.
    """
    variant = DeviceVariant(variant) if not isinstance(variant, DeviceVariant) else variant
    if variant is DeviceVariant.BULK50:
        return _bulk50_nmos(), _bulk50_pmos()
    if variant is DeviceVariant.BULK25:
        return _bulk25_nmos(), _bulk25_pmos()

    # The scale factors keep the total inverter leakage of the three variants
    # in the same ~1 uA range (the paper notes the total is the same for
    # D25-S, D25-G and D25-JN) while moving which component dominates.
    nmos, pmos = _bulk25_nmos(), _bulk25_pmos()
    if variant is DeviceVariant.D25_S:
        nmos = _apply_dominance(nmos, isub=2.0, igate=0.8, ibtbt=0.15, suffix="s")
        pmos = _apply_dominance(pmos, isub=2.0, igate=0.8, ibtbt=0.15, suffix="s")
    elif variant is DeviceVariant.D25_G:
        nmos = _apply_dominance(nmos, isub=0.30, igate=1.5, ibtbt=0.5, suffix="g")
        pmos = _apply_dominance(pmos, isub=0.30, igate=1.5, ibtbt=0.5, suffix="g")
    elif variant is DeviceVariant.D25_JN:
        nmos = _apply_dominance(nmos, isub=0.30, igate=0.35, ibtbt=4.0, suffix="jn")
        pmos = _apply_dominance(pmos, isub=0.30, igate=0.35, ibtbt=4.0, suffix="jn")
    else:  # pragma: no cover - exhaustive enum
        raise ValueError(f"unknown device variant: {variant}")
    return nmos, pmos


def make_device(variant: DeviceVariant | str, polarity: Polarity) -> DeviceParams:
    """Return a single device flavour of ``variant`` with the given polarity."""
    nmos, pmos = device_pair(variant)
    return nmos if polarity is Polarity.NMOS else pmos


def make_technology(
    variant: DeviceVariant | str = DeviceVariant.BULK50,
    temperature_k: float = 300.0,
) -> TechnologyParams:
    """Return a :class:`TechnologyParams` for a named variant.

    Parameters
    ----------
    variant:
        One of :class:`DeviceVariant` (or its string value).
    temperature_k:
        Operating temperature in kelvin.
    """
    variant = DeviceVariant(variant) if not isinstance(variant, DeviceVariant) else variant
    nmos, pmos = device_pair(variant)
    vdd = 1.0 if variant is DeviceVariant.BULK50 else 0.9
    return TechnologyParams(
        name=variant.value,
        vdd=vdd,
        temperature_k=temperature_k,
        nmos=nmos,
        pmos=pmos,
    )
