"""Reverse-biased junction band-to-band-tunneling (BTBT) model.

The heavy halo implants that suppress the short-channel effect in nano-scale
bulk devices create steep, highly doped drain/source-to-substrate junctions.
With the drain at VDD and the substrate at ground the junction is strongly
reverse biased, and electrons tunnel from the valence band of the p-side to
the conduction band of the n-side (Kane tunneling).  The resulting current

    J = A * E^gamma * Vrev * exp(-B(T) / E),      E ~ sqrt(N_eff * (Vrev + psi_bi))

* grows exponentially with the junction doping and the reverse bias
  (paper Fig. 4a — why halo doping trades subthreshold for BTBT leakage),
* rises only marginally with temperature through bandgap narrowing
  (paper Fig. 4c),
* is insensitive to the gate voltage, which is why input loading barely
  changes the junction component while output loading changes it strongly
  (paper Sec. 4).

As with the gate-tunneling model, the shape function is calibrated so that
``J(vref) == jbtbt_ref`` at the reference doping — the calibration stands in
for the AURORA parameter extraction of the paper.
"""

from __future__ import annotations

import math

import numpy as np

from repro.device.params import BtbtParams, DeviceParams
from repro.utils.constants import ROOM_TEMPERATURE_K, silicon_bandgap
from repro.utils.mathtools import _MAX_EXP_ARG, safe_exp, safe_exp_np


def _relative_field(vrev: float, params: BtbtParams) -> float:
    """Return the junction field normalized to the reference-bias field.

    E ~ sqrt(N_halo * (Vrev + psi_bi)); the normalization removes all the
    constant factors so only the doping and bias dependence remains.
    """
    if vrev < 0.0:
        vrev = 0.0
    numerator = params.halo_cm3 * (vrev + params.psi_bi)
    denominator = params.halo_ref_cm3 * (params.vref + params.psi_bi)
    return math.sqrt(numerator / denominator)


def _temperature_factor(params: BtbtParams, temperature_k: float) -> float:
    """Return the Kane exponent scale factor due to bandgap narrowing."""
    eg = silicon_bandgap(temperature_k)
    eg_ref = silicon_bandgap(ROOM_TEMPERATURE_K)
    return (eg / eg_ref) ** params.bandgap_sensitivity


def btbt_current_density(
    vrev: float,
    params: BtbtParams,
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """Return the junction BTBT current density (A/um^2) at reverse bias ``vrev``.

    A forward-biased (``vrev < 0``) junction would conduct as a diode; that
    regime never occurs in a static CMOS leakage state, so the model simply
    returns zero there.
    """
    if vrev <= 0.0:
        return 0.0
    if params.jbtbt_ref <= 0.0:
        return 0.0
    field = _relative_field(vrev, params)
    if field <= 0.0:
        return 0.0
    b_eff = params.b_field * _temperature_factor(params, temperature_k)
    # The reference shape value at (vref, halo_ref) has field == 1 by
    # construction, so normalization is exp(-b_field at reference).
    shape = (field**params.field_exponent) * (vrev / params.vref) * safe_exp(
        -b_eff / field
    )
    reference = safe_exp(-params.b_field)
    return params.jbtbt_ref * shape / reference


def btbt_current_density_v(
    vrev: np.ndarray,
    *,
    jbtbt_ref: np.ndarray,
    vref: np.ndarray,
    psi_bi: np.ndarray,
    field_exponent: np.ndarray,
    field_scale: np.ndarray,
    b_eff: np.ndarray,
    reference: np.ndarray,
) -> np.ndarray:
    """Vectorized junction BTBT current density (A/um^2).

    Array twin of :func:`btbt_current_density`.  ``field_scale`` is the
    pre-computed ``sqrt(halo / (halo_ref * (vref + psi_bi)))`` doping factor
    (so ``field = field_scale * sqrt(vrev + psi_bi)``), ``b_eff`` the Kane
    exponent already scaled by the bandgap temperature factor, and
    ``reference`` the ``safe_exp(-b_field)`` normalization — all
    bias-independent, pre-computed by the packed-device layer.  Non-reverse
    bias (``vrev <= 0``) yields exactly zero, as in the scalar model.
    """
    vrev = np.asarray(vrev, dtype=float)
    vrev_clipped = np.maximum(vrev, 0.0)
    field = field_scale * np.sqrt(vrev_clipped + psi_bi)
    field_safe = np.where(field > 0.0, field, 1.0)
    shape = (
        field_safe**field_exponent
        * (vrev_clipped / vref)
        * safe_exp_np(-b_eff / field_safe)
    )
    density = jbtbt_ref * shape / reference
    valid = (vrev > 0.0) & (jbtbt_ref > 0.0) & (field > 0.0)
    return np.where(valid, density, 0.0)


def btbt_current_density_grad_v(
    vrev: np.ndarray,
    *,
    jbtbt_ref: np.ndarray,
    vref: np.ndarray,
    psi_bi: np.ndarray,
    field_exponent: np.ndarray,
    field_scale: np.ndarray,
    b_eff: np.ndarray,
    reference: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(density, ddensity/dvrev)``, vectorized.

    Gradient twin of :func:`btbt_current_density_v`.  The density is linear
    in ``vrev`` times a field factor, so the derivative is computed from the
    per-volt factor — finite all the way down to ``vrev -> 0+``.  The
    non-reverse branch (``vrev <= 0``) returns exactly zero for both value
    and derivative: the model has a genuine kink at zero bias, and the
    inactive-side derivative is the convention shared by all clamped terms.
    Where ``safe_exp_np`` clips the Kane exponent the density is flat in the
    field, and the exponential term's contribution is dropped to match.
    """
    vrev = np.asarray(vrev, dtype=float)
    vrev_clipped = np.maximum(vrev, 0.0)
    field = field_scale * np.sqrt(vrev_clipped + psi_bi)
    field_safe = np.where(field > 0.0, field, 1.0)
    exponent = -b_eff / field_safe
    exp_term = safe_exp_np(exponent)
    # Value grouping mirrors btbt_current_density_v bitwise; the per-volt
    # factor (density with the linear vrev term divided out) only feeds the
    # derivative, where it stays finite down to vrev -> 0+.
    shape = field_safe**field_exponent * (vrev_clipped / vref) * exp_term
    density = jbtbt_ref * shape / reference
    per_volt = (
        jbtbt_ref * field_safe**field_exponent * exp_term / (vref * reference)
    )
    field_grad = field_scale * field_scale / (2.0 * field_safe)
    exponential_part = np.where(
        np.abs(exponent) > _MAX_EXP_ARG, 0.0, b_eff / (field_safe * field_safe)
    )
    grad = per_volt * (
        1.0
        + vrev_clipped
        * field_grad
        * (field_exponent / field_safe + exponential_part)
    )
    valid = (vrev > 0.0) & (jbtbt_ref > 0.0) & (field > 0.0)
    return np.where(valid, density, 0.0), np.where(valid, grad, 0.0)


def junction_btbt_current(
    device: DeviceParams,
    v_junction: float,
    v_bulk: float,
    temperature_k: float,
) -> float:
    """Return the BTBT current (A) of one S/D junction of ``device``.

    Parameters
    ----------
    v_junction:
        Normalized potential of the drain or source diffusion.
    v_bulk:
        Normalized potential of the bulk/substrate terminal.

    The returned value is the magnitude of the current flowing from the
    diffusion into the bulk (the reverse-bias tunneling direction); it is
    zero when the junction is not reverse biased.
    """
    vrev = v_junction - v_bulk
    density = btbt_current_density(vrev, device.btbt, temperature_k)
    return density * device.junction_area_um2 * device.ibtbt_scale
