"""Subthreshold / channel conduction model.

The model is an EKV-style smooth interpolation

    I_ch = I_S * [ softplus((Vp - Vs')/2vT)^2 - softplus((Vp - Vd')/2vT)^2 ]

which reduces to the familiar exponential subthreshold expression

    I_sub = I_0 * exp((Vgs - Vth)/(n*vT)) * (1 - exp(-Vds/vT))

deep in weak inversion and to a square-law on-current above threshold.  The
smooth on-state matters to the DC solver: an "on" transistor must hold its
node at the rail against the leakage of the opposing "off" network, and the
solver's bracketing routine needs a continuous, monotonic I-V to do that.

The effective threshold voltage includes the short-channel terms the paper
leans on:

* DIBL (Vth drops with Vds — why subthreshold leakage is sensitive to output
  loading),
* Vth roll-off with channel length and oxide thickness (why thicker oxide
  *increases* subthreshold leakage, Fig. 4b),
* the halo-doping dependence (Fig. 4a),
* the body effect (source of the stacking effect in NAND/NOR pull networks),
* a linear temperature coefficient (with the thermal voltage, the source of
  the exponential temperature dependence in Fig. 4c).
"""

from __future__ import annotations

from repro.device.params import DeviceParams
from repro.utils.constants import EPSILON_OX, ROOM_TEMPERATURE_K, thermal_voltage
from repro.utils.mathtools import log1p_exp, log1p_exp_grad_np, log1p_exp_np

import math

import numpy as np


def oxide_capacitance_per_area(tox_nm: float) -> float:
    """Return the gate-oxide capacitance per unit area in F/m^2."""
    if tox_nm <= 0:
        raise ValueError(f"tox_nm must be positive, got {tox_nm}")
    return EPSILON_OX / (tox_nm * 1.0e-9)


def effective_threshold(
    device: DeviceParams,
    vds: float,
    vbs: float,
    temperature_k: float,
) -> float:
    """Return the effective threshold voltage (normalized, NMOS-like frame).

    Parameters
    ----------
    device:
        Device flavour (its :class:`SubthresholdParams` provide the
        coefficients; geometry provides the roll-off reference point).
    vds:
        Normalized drain-source voltage (>= 0 after source/drain ordering).
    vbs:
        Normalized bulk-source voltage (<= 0 for a reverse-biased body).
    temperature_k:
        Device temperature in kelvin.
    """
    sub = device.subthreshold
    vth = sub.vth0

    # Body effect: a source above the bulk (vbs < 0 in the normalized frame)
    # raises the threshold; this is what weakens the top transistor of a
    # stack and produces the stacking effect.
    sqrt_arg = sub.phi_s - vbs
    if sqrt_arg < 0.0:
        sqrt_arg = 0.0
    vth += sub.body_gamma * (math.sqrt(sqrt_arg) - math.sqrt(sub.phi_s))

    # Drain induced barrier lowering.
    vth -= sub.dibl * max(vds, 0.0)

    # Temperature coefficient (Vth falls as temperature rises).
    vth += sub.vth_temp_coeff * (temperature_k - ROOM_TEMPERATURE_K)

    # Short-channel geometry sensitivities relative to the preset's nominal
    # geometry: a thicker oxide or shorter channel weakens gate control and
    # lowers Vth (Fig. 4b); a heavier halo restores it (Fig. 4a).
    if sub.tox_ref_nm is not None:
        vth -= sub.sce_tox_coeff * (device.tox_nm - sub.tox_ref_nm)
    if sub.length_ref_nm is not None:
        vth += sub.sce_length_coeff * (device.length_nm - sub.length_ref_nm)
    halo_ratio = device.btbt.halo_cm3 / device.btbt.halo_ref_cm3
    if halo_ratio > 0 and halo_ratio != 1.0:
        vth += sub.halo_vth_coeff * math.log10(halo_ratio)

    return vth


def specific_current(device: DeviceParams, temperature_k: float) -> float:
    """Return the EKV specific current I_S in amperes.

    I_S = 2 * n * mu(T) * Cox * vT(T)^2 * (W/L)
    """
    sub = device.subthreshold
    vt = thermal_voltage(temperature_k)
    mobility = sub.mobility_m2 * (
        temperature_k / ROOM_TEMPERATURE_K
    ) ** (-sub.mobility_temp_exponent)
    cox = oxide_capacitance_per_area(device.tox_nm)
    w_over_l = device.width_nm / device.length_nm
    return 2.0 * sub.n_swing * mobility * cox * vt * vt * w_over_l


def channel_current(
    device: DeviceParams,
    vgs: float,
    vds: float,
    vbs: float,
    temperature_k: float,
    vth_shift: float = 0.0,
) -> float:
    """Return the channel (drain-to-source) current in amperes.

    All voltages are in the normalized (NMOS-like) frame with ``vds >= 0``;
    :class:`repro.device.mosfet.Mosfet` handles polarity mirroring and
    source/drain ordering before calling this function.

    Parameters
    ----------
    vth_shift:
        Additional threshold shift (geometry/process) added on top of the
        bias- and temperature-dependent effective threshold.
    """
    if vds < 0:
        raise ValueError("channel_current expects vds >= 0 (normalized frame)")
    sub = device.subthreshold
    vt = thermal_voltage(temperature_k)
    vth = effective_threshold(device, vds, vbs, temperature_k) + vth_shift

    # Pinch-off voltage approximation, source referenced.
    vp = (vgs - vth) / sub.n_swing
    i_spec = specific_current(device, temperature_k)

    # Vertical-field mobility degradation: active only above threshold, so the
    # subthreshold (leakage) region is untouched while the on-state
    # conductance — which sets how far loading currents move driven nets —
    # is reduced to realistic values.
    overdrive = vgs - vth
    if overdrive > 0.0 and sub.theta_mobility > 0.0:
        i_spec /= 1.0 + sub.theta_mobility * overdrive

    forward = log1p_exp(vp / (2.0 * vt)) ** 2
    reverse = log1p_exp((vp - vds) / (2.0 * vt)) ** 2
    current = i_spec * (forward - reverse)
    return current * device.isub_scale


def effective_threshold_v(
    vds: np.ndarray,
    vbs: np.ndarray,
    *,
    vth_base: np.ndarray,
    body_gamma: np.ndarray,
    phi_s: np.ndarray,
    sqrt_phi_s: np.ndarray,
    dibl: np.ndarray,
) -> np.ndarray:
    """Vectorized effective threshold (normalized, NMOS-like frame).

    This is the array twin of :func:`effective_threshold`; it is written
    against pre-extracted parameter arrays instead of a single
    :class:`DeviceParams` so one call can evaluate a whole batch of
    transistors whose flavours, geometry shifts and temperatures terms
    differ.  ``vth_base`` must already contain every bias-independent term:
    ``vth0``, the temperature coefficient, the short-channel geometry
    sensitivities, the halo term, and any per-instance ``vth_shift``.  All
    parameter arrays broadcast against the voltage arrays.
    """
    body = body_gamma * (np.sqrt(np.maximum(phi_s - vbs, 0.0)) - sqrt_phi_s)
    return vth_base + body - dibl * np.maximum(vds, 0.0)


def effective_threshold_grad_v(
    vds: np.ndarray,
    vbs: np.ndarray,
    *,
    vth_base: np.ndarray,
    body_gamma: np.ndarray,
    phi_s: np.ndarray,
    sqrt_phi_s: np.ndarray,
    dibl: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return ``(vth_eff, dvth/dvds, dvth/dvbs)``, vectorized.

    The gradient twin of :func:`effective_threshold_v`, used by the Newton
    solver's analytic device Jacobians.  The two kinks of the value path —
    the depleted-body clamp ``max(phi_s - vbs, 0)`` and the DIBL clamp
    ``max(vds, 0)`` — take their inactive-side (zero) derivative exactly at
    the clamp point, matching the convention of every other clamped term.
    """
    arg = phi_s - vbs
    positive = arg > 0.0
    root = np.sqrt(np.maximum(arg, 0.0))
    vth = vth_base + body_gamma * (root - sqrt_phi_s) - dibl * np.maximum(vds, 0.0)
    d_vds = np.where(vds > 0.0, -dibl, 0.0)
    d_vbs = np.where(positive, -0.5 * body_gamma / np.where(positive, root, 1.0), 0.0)
    return vth, d_vds, d_vbs


def channel_current_v(
    vgs: np.ndarray,
    vds: np.ndarray,
    temperature_k: float,
    *,
    vth_eff: np.ndarray,
    n_swing: np.ndarray,
    i_spec: np.ndarray,
    theta_mobility: np.ndarray,
    isub_scale: np.ndarray,
) -> np.ndarray:
    """Vectorized channel (drain-to-source) current, ``vds >= 0`` frame.

    Array twin of :func:`channel_current`.  ``vth_eff`` is the effective
    threshold *including* any per-instance shift (matching the scalar path,
    which folds ``Mosfet.vth_shift`` into the threshold before evaluating);
    ``i_spec`` is the pre-computed EKV specific current at ``temperature_k``.
    """
    vt = thermal_voltage(temperature_k)
    vp = (vgs - vth_eff) / n_swing
    overdrive = vgs - vth_eff
    # Mobility degradation is active only above threshold; clamping the
    # overdrive at zero reproduces the scalar branch exactly.
    degradation = 1.0 + theta_mobility * np.maximum(overdrive, 0.0)
    forward = log1p_exp_np(vp / (2.0 * vt)) ** 2
    reverse = log1p_exp_np((vp - vds) / (2.0 * vt)) ** 2
    return (i_spec / degradation) * (forward - reverse) * isub_scale


def channel_current_grad_v(
    vgs: np.ndarray,
    vds: np.ndarray,
    temperature_k: float,
    *,
    vth_eff: np.ndarray,
    dvth_dvds: np.ndarray,
    dvth_dvbs: np.ndarray,
    n_swing: np.ndarray,
    i_spec: np.ndarray,
    theta_mobility: np.ndarray,
    isub_scale: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Return the channel current and its partials wrt ``(vgs, vds, vbs)``.

    Gradient twin of :func:`channel_current_v`.  ``vth_eff`` and its
    partials come from :func:`effective_threshold_grad_v`, so the chain
    through the bias-dependent threshold (DIBL, body effect) is included:
    the returned ``d/dvds`` and ``d/dvbs`` hold ``vgs`` fixed but let the
    threshold move.  The mobility-degradation clamp ``max(overdrive, 0)``
    contributes its inactive-side (zero) derivative exactly at threshold,
    matching the value twin's branch.
    """
    # The value computation mirrors channel_current_v operation for
    # operation, so the current returned here is bitwise identical to it.
    vt = thermal_voltage(temperature_k)
    vp = (vgs - vth_eff) / n_swing
    overdrive = vgs - vth_eff
    a_forward = vp / (2.0 * vt)
    a_reverse = (vp - vds) / (2.0 * vt)
    sp_forward = log1p_exp_np(a_forward)
    sp_reverse = log1p_exp_np(a_reverse)
    slope_forward = log1p_exp_grad_np(a_forward)
    slope_reverse = log1p_exp_grad_np(a_reverse)
    degradation = 1.0 + theta_mobility * np.maximum(overdrive, 0.0)
    forward = sp_forward**2
    reverse = sp_reverse**2
    current = (i_spec / degradation) * (forward - reverse) * isub_scale
    scale = i_spec * isub_scale
    difference = forward - reverse

    # Everything flows through u = vgs - vth_eff except the direct vds term
    # of the reverse softplus and the degradation clamp.
    u_vgs = 1.0
    u_vds = -np.asarray(dvth_dvds)
    u_vbs = -np.asarray(dvth_dvbs)
    forward_du = sp_forward * slope_forward / (n_swing * vt)
    reverse_du = sp_reverse * slope_reverse / (n_swing * vt)
    reverse_dvds = -sp_reverse * slope_reverse / vt
    degradation_du = theta_mobility * (overdrive > 0.0)

    def partial(u_x, vds_x):
        numerator = forward_du * u_x - (reverse_du * u_x + reverse_dvds * vds_x)
        return scale * (
            numerator / degradation
            - difference * (degradation_du * u_x) / (degradation * degradation)
        )

    return current, partial(u_vgs, 0.0), partial(u_vds, 1.0), partial(u_vbs, 0.0)


def is_off(
    device: DeviceParams,
    vgs: float,
    vds: float,
    vbs: float,
    temperature_k: float,
    vth_shift: float = 0.0,
    margin: float = 0.0,
) -> bool:
    """Return True when the device operates below threshold.

    Used by leakage reports to attribute channel current to the
    "subthreshold" component only for transistors that are actually off.
    """
    vth = effective_threshold(device, max(vds, 0.0), vbs, temperature_k) + vth_shift
    return vgs < vth - margin
