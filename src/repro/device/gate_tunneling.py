"""Gate direct-tunneling model.

In sub-100 nm devices with ultra-thin oxides, carriers tunnel directly through
the gate dielectric.  The components retained here follow the BSIM4 partition
the paper cites (Sec. 2.2):

* ``Igso`` / ``Igdo`` — gate to source/drain extension overlap currents,
  driven by Vgs / Vgd regardless of the channel state;
* ``Igcs`` / ``Igcd`` — gate-to-channel current, present when the channel is
  inverted, partitioned between source and drain;
* ``Igb`` — gate-to-substrate current, a small fraction of the channel
  tunneling.

The bias dependence uses the standard direct-tunneling shape function

    J(Vox) = A * (Vox / tox)^2 * exp( -B * tox * (1 - (1 - Vox/phi_b)^1.5) / Vox )

calibrated so that ``J(vref, tox_ref) == jg_ref`` of the device's
:class:`~repro.device.params.GateTunnelingParams`.  This keeps the exponential
sensitivity to oxide voltage and thickness (the physics that matters for the
loading effect) while letting presets place the absolute magnitude exactly
where the paper's devices sit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.device.params import DeviceParams, GateTunnelingParams
from repro.utils.constants import ROOM_TEMPERATURE_K
from repro.utils.mathtools import safe_exp, safe_exp_np, smooth_step, smooth_step_np

#: Oxide voltage below which the shape function switches to its Taylor limit.
_SMALL_VOX = 1.0e-6


def _shape_function(vox: float, tox_nm: float, params: GateTunnelingParams) -> float:
    """Return the unnormalized direct-tunneling shape value at ``vox`` >= 0."""
    if vox <= 0.0:
        return 0.0
    phi = params.barrier_ev
    b = params.b_tox_per_nm
    # (1 - (1 - v/phi)^1.5)/v -> 1.5/phi as v -> 0; the expression is smooth.
    ratio = vox / phi
    if ratio >= 1.0:
        barrier_term = 1.0 / vox
    elif vox < _SMALL_VOX:
        barrier_term = 1.5 / phi
    else:
        barrier_term = (1.0 - (1.0 - ratio) ** 1.5) / vox
    exponent = -b * tox_nm * phi * barrier_term / 1.5
    # Normalizing by phi/1.5 makes the exponent equal -b*tox at the small-Vox
    # limit, so b_tox_per_nm is directly the low-bias decades-per-nm knob.
    prefactor = (vox / tox_nm) ** 2
    return prefactor * safe_exp(exponent)


def tunneling_current_density(
    vox: float,
    tox_nm: float,
    params: GateTunnelingParams,
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """Return the gate tunneling current density (A/um^2) at oxide voltage ``vox``.

    The magnitude is calibrated against ``params.jg_ref`` at the reference
    bias/thickness.  ``vox`` may be negative; the density returned is the
    magnitude for ``|vox|`` (the caller assigns direction).
    """
    magnitude = abs(vox)
    reference = _shape_function(params.vref, params.tox_ref_nm, params)
    if reference <= 0.0:
        return 0.0
    value = params.jg_ref * _shape_function(magnitude, tox_nm, params) / reference
    # Gate tunneling is nearly temperature independent; a small linear term
    # mirrors the almost-flat curve in the paper's Fig. 4(c).
    value *= 1.0 + params.temp_coeff_per_k * (temperature_k - ROOM_TEMPERATURE_K)
    return max(value, 0.0)


def tunneling_current_density_v(
    vox_magnitude: np.ndarray,
    tox_nm: np.ndarray,
    *,
    barrier_ev: np.ndarray,
    b_tox_per_nm: np.ndarray,
    density_scale: np.ndarray,
    temp_factor: np.ndarray,
) -> np.ndarray:
    """Vectorized gate-tunneling current-density magnitude (A/um^2).

    Array twin of :func:`tunneling_current_density`.  ``vox_magnitude`` must
    be non-negative (callers take ``abs`` and re-assign the sign);
    ``density_scale`` is the pre-computed ``jg_ref / shape(vref, tox_ref)``
    calibration factor (zero when the reference shape vanishes) and
    ``temp_factor`` the linear temperature correction — both are
    bias-independent, so the packed-device layer computes them once per
    solve.  All parameter arrays broadcast against ``vox_magnitude``.
    """
    phi = barrier_ev
    ratio = vox_magnitude / phi
    # Guarded denominator: the small-Vox and zero branches never read it.
    vox_safe = np.where(vox_magnitude < _SMALL_VOX, 1.0, vox_magnitude)
    remaining = np.maximum(1.0 - ratio, 0.0)
    mid_term = (1.0 - remaining * np.sqrt(remaining)) / vox_safe
    barrier_term = np.where(
        ratio >= 1.0,
        1.0 / vox_safe,
        np.where(vox_magnitude < _SMALL_VOX, 1.5 / phi, mid_term),
    )
    exponent = -b_tox_per_nm * tox_nm * phi * barrier_term / 1.5
    prefactor = vox_magnitude / tox_nm
    shape = prefactor * prefactor * safe_exp_np(exponent)
    return np.maximum(density_scale * shape * temp_factor, 0.0)


def gate_tunneling_components_v(
    vg: np.ndarray,
    vd: np.ndarray,
    vs: np.ndarray,
    vb: np.ndarray,
    *,
    vth_eff: np.ndarray,
    tox_nm: np.ndarray,
    overlap_area_um2: np.ndarray,
    gate_area_um2: np.ndarray,
    accumulation_factor: np.ndarray,
    gb_fraction: np.ndarray,
    barrier_ev: np.ndarray,
    b_tox_per_nm: np.ndarray,
    density_scale: np.ndarray,
    temp_factor: np.ndarray,
    igate_scale: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized gate-tunneling components ``(igso, igdo, igcs, igcd, igb)``.

    Array twin of :func:`gate_tunneling_components`, evaluated in the
    normalized (NMOS-like, source/drain ordered) frame.  Sign conventions
    match the scalar path: positive means conventional current from the gate
    terminal into the device.  The four oxide-voltage evaluations (both
    overlaps, channel, bulk) are fused into a single density call on a
    stacked array — one pass through the shape function instead of four.
    """
    inversion = smooth_step_np(vg - vs - vth_eff, width=0.05)
    channel_potential = vs + 0.5 * np.maximum(
        np.minimum(vg - vth_eff, vd) - vs, 0.0
    )

    vox = np.concatenate([vg - vs, vg - vd, vg - channel_potential, vg - vb])

    def stack4(parameter: np.ndarray) -> np.ndarray:
        parameter = np.asarray(parameter)
        if parameter.ndim == 0:  # pragma: no cover - scalar parameter
            return parameter
        return np.concatenate([parameter] * 4)

    magnitude = tunneling_current_density_v(
        np.abs(vox),
        stack4(tox_nm),
        barrier_ev=stack4(barrier_ev),
        b_tox_per_nm=stack4(b_tox_per_nm),
        density_scale=stack4(density_scale),
        temp_factor=stack4(temp_factor),
    )
    density_so, density_do, density_channel, density_bulk = np.split(
        np.sign(vox) * magnitude, 4
    )

    igso = overlap_area_um2 * density_so * igate_scale
    igdo = overlap_area_um2 * density_do * igate_scale
    igc_total = gate_area_um2 * density_channel * inversion * igate_scale
    igb_acc = (
        gate_area_um2
        * density_bulk
        * accumulation_factor
        * (1.0 - inversion)
        * igate_scale
    )

    igb_inv = igc_total * gb_fraction
    igc_effective = igc_total - igb_inv
    # Smoothly blended source/drain partition; see the scalar twin for why
    # a fixed 0.6/0.4 split would make the KCL residual discontinuous.
    source_share = 0.4 + 0.2 * smooth_step_np(vd - vs, width=0.05)
    igcs = source_share * igc_effective
    igcd = (1.0 - source_share) * igc_effective
    return igso, igdo, igcs, igcd, igb_inv + igb_acc


class GateTunnelingComponents:
    """Signed gate-tunneling component currents of one transistor.

    All currents are expressed in the *normalized* (NMOS-like) voltage frame
    and use the convention "positive = conventional current flowing from the
    gate terminal into the device".  The mirroring for PMOS happens in
    :class:`repro.device.mosfet.Mosfet`.

    Attributes
    ----------
    igso / igdo:
        Gate-to-source / gate-to-drain overlap currents (signed).
    igcs / igcd:
        Source / drain partitions of the gate-to-channel current (signed).
    igb:
        Gate-to-substrate current (signed).
    """

    __slots__ = ("igso", "igdo", "igcs", "igcd", "igb")

    def __init__(
        self, igso: float, igdo: float, igcs: float, igcd: float, igb: float
    ) -> None:
        self.igso = igso
        self.igdo = igdo
        self.igcs = igcs
        self.igcd = igcd
        self.igb = igb

    @property
    def total_gate_terminal(self) -> float:
        """Total signed current leaving the gate terminal into the device."""
        return self.igso + self.igdo + self.igcs + self.igcd + self.igb

    @property
    def magnitude(self) -> float:
        """Sum of component magnitudes (the 'gate leakage' of reports)."""
        return (
            abs(self.igso)
            + abs(self.igdo)
            + abs(self.igcs)
            + abs(self.igcd)
            + abs(self.igb)
        )


def gate_tunneling_components(
    device: DeviceParams,
    vg: float,
    vd: float,
    vs: float,
    vb: float,
    temperature_k: float,
    vth_eff: float,
) -> GateTunnelingComponents:
    """Compute the gate tunneling components in the normalized frame.

    Parameters
    ----------
    device:
        Device flavour; supplies areas, oxide thickness and tunneling
        parameters.
    vg, vd, vs, vb:
        Normalized node voltages (an NMOS sees them as-is; a PMOS is mirrored
        by the caller).
    vth_eff:
        Effective threshold voltage used to decide whether the channel is
        inverted (gate-to-channel tunneling requires an inverted channel).
    """
    params = device.gate_tunneling
    tox = device.tox_nm
    scale = device.igate_scale

    overlap_area = device.overlap_area_um2
    channel_area = device.gate_area_um2

    def signed_density(vox: float) -> float:
        density = tunneling_current_density(vox, tox, params, temperature_k)
        return math.copysign(density, vox) if vox != 0.0 else 0.0

    # Overlap currents exist for any gate-to-extension bias.
    igso = overlap_area * signed_density(vg - vs) * scale
    igdo = overlap_area * signed_density(vg - vd) * scale

    # Gate-to-channel tunneling requires an inverted channel; the degree of
    # inversion is blended smoothly around threshold so the solver sees a
    # continuous function of the gate voltage.
    vgs = vg - vs
    inversion = smooth_step(vgs - vth_eff, width=0.05)
    channel_potential = vs + 0.5 * max(min(vg - vth_eff, vd) - vs, 0.0)
    vox_channel = vg - channel_potential
    igc_total = channel_area * signed_density(vox_channel) * inversion * scale

    # When the channel is not inverted a weaker gate-to-bulk (accumulation /
    # depletion) tunneling path remains.
    vox_bulk = vg - vb
    igb_acc = (
        channel_area
        * signed_density(vox_bulk)
        * params.accumulation_factor
        * (1.0 - inversion)
        * scale
    )

    igb_inv = igc_total * params.gb_fraction
    igc_effective = igc_total - igb_inv

    # The channel current partitions between source and drain ends; with the
    # drain at a higher potential the source end sees the larger oxide field,
    # so it receives the larger share.  The share is blended smoothly from
    # 0.5/0.5 at Vds = 0 toward the asymptotic 0.6/0.4 split: the caller
    # orders source/drain by potential, so a fixed asymmetric split would
    # make the terminal currents jump when a floating node crosses its
    # neighbour's voltage — a residual discontinuity that leaves the DC
    # solvers' root location ill-defined at exactly the stack-node
    # equilibria the characterization sweeps sit on.
    source_share = 0.4 + 0.2 * smooth_step(vd - vs, width=0.05)
    igcs = source_share * igc_effective
    igcd = (1.0 - source_share) * igc_effective

    return GateTunnelingComponents(
        igso=igso,
        igdo=igdo,
        igcs=igcs,
        igcd=igcd,
        igb=igb_inv + igb_acc,
    )
