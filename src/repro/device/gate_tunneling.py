"""Gate direct-tunneling model.

In sub-100 nm devices with ultra-thin oxides, carriers tunnel directly through
the gate dielectric.  The components retained here follow the BSIM4 partition
the paper cites (Sec. 2.2):

* ``Igso`` / ``Igdo`` — gate to source/drain extension overlap currents,
  driven by Vgs / Vgd regardless of the channel state;
* ``Igcs`` / ``Igcd`` — gate-to-channel current, present when the channel is
  inverted, partitioned between source and drain;
* ``Igb`` — gate-to-substrate current, a small fraction of the channel
  tunneling.

The bias dependence uses the standard direct-tunneling shape function

    J(Vox) = A * (Vox / tox)^2 * exp( -B * tox * (1 - (1 - Vox/phi_b)^1.5) / Vox )

calibrated so that ``J(vref, tox_ref) == jg_ref`` of the device's
:class:`~repro.device.params.GateTunnelingParams`.  This keeps the exponential
sensitivity to oxide voltage and thickness (the physics that matters for the
loading effect) while letting presets place the absolute magnitude exactly
where the paper's devices sit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.device.params import DeviceParams, GateTunnelingParams
from repro.utils.constants import ROOM_TEMPERATURE_K
from repro.utils.mathtools import (
    _MAX_EXP_ARG,
    safe_exp,
    safe_exp_np,
    smooth_step,
    smooth_step_grad_np,
    smooth_step_np,
)

#: Oxide voltage below which the shape function switches to its Taylor limit.
_SMALL_VOX = 1.0e-6


def _shape_function(vox: float, tox_nm: float, params: GateTunnelingParams) -> float:
    """Return the unnormalized direct-tunneling shape value at ``vox`` >= 0."""
    if vox <= 0.0:
        return 0.0
    phi = params.barrier_ev
    b = params.b_tox_per_nm
    # (1 - (1 - v/phi)^1.5)/v -> 1.5/phi as v -> 0; the expression is smooth.
    ratio = vox / phi
    if ratio >= 1.0:
        barrier_term = 1.0 / vox
    elif vox < _SMALL_VOX:
        barrier_term = 1.5 / phi
    else:
        barrier_term = (1.0 - (1.0 - ratio) ** 1.5) / vox
    exponent = -b * tox_nm * phi * barrier_term / 1.5
    # Normalizing by phi/1.5 makes the exponent equal -b*tox at the small-Vox
    # limit, so b_tox_per_nm is directly the low-bias decades-per-nm knob.
    prefactor = (vox / tox_nm) ** 2
    return prefactor * safe_exp(exponent)


def tunneling_current_density(
    vox: float,
    tox_nm: float,
    params: GateTunnelingParams,
    temperature_k: float = ROOM_TEMPERATURE_K,
) -> float:
    """Return the gate tunneling current density (A/um^2) at oxide voltage ``vox``.

    The magnitude is calibrated against ``params.jg_ref`` at the reference
    bias/thickness.  ``vox`` may be negative; the density returned is the
    magnitude for ``|vox|`` (the caller assigns direction).
    """
    magnitude = abs(vox)
    reference = _shape_function(params.vref, params.tox_ref_nm, params)
    if reference <= 0.0:
        return 0.0
    value = params.jg_ref * _shape_function(magnitude, tox_nm, params) / reference
    # Gate tunneling is nearly temperature independent; a small linear term
    # mirrors the almost-flat curve in the paper's Fig. 4(c).
    value *= 1.0 + params.temp_coeff_per_k * (temperature_k - ROOM_TEMPERATURE_K)
    return max(value, 0.0)


def tunneling_current_density_v(
    vox_magnitude: np.ndarray,
    tox_nm: np.ndarray,
    *,
    barrier_ev: np.ndarray,
    b_tox_per_nm: np.ndarray,
    density_scale: np.ndarray,
    temp_factor: np.ndarray,
) -> np.ndarray:
    """Vectorized gate-tunneling current-density magnitude (A/um^2).

    Array twin of :func:`tunneling_current_density`.  ``vox_magnitude`` must
    be non-negative (callers take ``abs`` and re-assign the sign);
    ``density_scale`` is the pre-computed ``jg_ref / shape(vref, tox_ref)``
    calibration factor (zero when the reference shape vanishes) and
    ``temp_factor`` the linear temperature correction — both are
    bias-independent, so the packed-device layer computes them once per
    solve.  All parameter arrays broadcast against ``vox_magnitude``.
    """
    phi = barrier_ev
    ratio = vox_magnitude / phi
    # Guarded denominator: the small-Vox and zero branches never read it.
    vox_safe = np.where(vox_magnitude < _SMALL_VOX, 1.0, vox_magnitude)
    remaining = np.maximum(1.0 - ratio, 0.0)
    mid_term = (1.0 - remaining * np.sqrt(remaining)) / vox_safe
    barrier_term = np.where(
        ratio >= 1.0,
        1.0 / vox_safe,
        np.where(vox_magnitude < _SMALL_VOX, 1.5 / phi, mid_term),
    )
    exponent = -b_tox_per_nm * tox_nm * phi * barrier_term / 1.5
    prefactor = vox_magnitude / tox_nm
    shape = prefactor * prefactor * safe_exp_np(exponent)
    return np.maximum(density_scale * shape * temp_factor, 0.0)


def tunneling_current_density_grad_v(
    vox_magnitude: np.ndarray,
    tox_nm: np.ndarray,
    *,
    barrier_ev: np.ndarray,
    b_tox_per_nm: np.ndarray,
    density_scale: np.ndarray,
    temp_factor: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(magnitude, dmagnitude/dvox_magnitude)``, vectorized.

    Gradient twin of :func:`tunneling_current_density_v`, branch for
    branch: the small-``Vox`` Taylor branch is a constant exponent (zero
    exponent derivative, exactly like the value path), and where the
    exponent is clipped by ``safe_exp_np`` the density is flat in ``vox``
    so the exponential term contributes nothing.  Because the signed
    density ``sign(vox) * J(|vox|)`` is odd, this even derivative is also
    ``d(signed density)/d(vox)`` — callers need no extra sign bookkeeping.
    """
    phi = barrier_ev
    ratio = vox_magnitude / phi
    small = vox_magnitude < _SMALL_VOX
    high = ratio >= 1.0
    vox_safe = np.where(small, 1.0, vox_magnitude)
    remaining = np.maximum(1.0 - ratio, 0.0)
    sqrt_remaining = np.sqrt(remaining)
    mid_term = (1.0 - remaining * sqrt_remaining) / vox_safe
    barrier_term = np.where(
        high, 1.0 / vox_safe, np.where(small, 1.5 / phi, mid_term)
    )
    # d(barrier_term)/dvox per branch; the Taylor branch is a constant.
    mid_grad = (1.5 * sqrt_remaining / phi - mid_term) / vox_safe
    barrier_grad = np.where(
        high, -1.0 / (vox_safe * vox_safe), np.where(small, 0.0, mid_grad)
    )
    exponent = -b_tox_per_nm * tox_nm * phi * barrier_term / 1.5
    exponent_grad = -b_tox_per_nm * tox_nm * phi * barrier_grad / 1.5
    clipped = np.abs(exponent) > _MAX_EXP_ARG
    exp_term = safe_exp_np(exponent)
    prefactor = vox_magnitude / tox_nm
    shape = prefactor * prefactor * exp_term
    shape_grad = exp_term * (2.0 * vox_magnitude / (tox_nm * tox_nm)) + np.where(
        clipped, 0.0, shape * exponent_grad
    )
    # Value grouping mirrors tunneling_current_density_v bitwise.
    return (
        np.maximum(density_scale * shape * temp_factor, 0.0),
        density_scale * shape_grad * temp_factor,
    )


def gate_tunneling_components_v(
    vg: np.ndarray,
    vd: np.ndarray,
    vs: np.ndarray,
    vb: np.ndarray,
    *,
    vth_eff: np.ndarray,
    tox_nm: np.ndarray,
    overlap_area_um2: np.ndarray,
    gate_area_um2: np.ndarray,
    accumulation_factor: np.ndarray,
    gb_fraction: np.ndarray,
    barrier_ev: np.ndarray,
    b_tox_per_nm: np.ndarray,
    density_scale: np.ndarray,
    temp_factor: np.ndarray,
    igate_scale: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized gate-tunneling components ``(igso, igdo, igcs, igcd, igb)``.

    Array twin of :func:`gate_tunneling_components`, evaluated in the
    normalized (NMOS-like, source/drain ordered) frame.  Sign conventions
    match the scalar path: positive means conventional current from the gate
    terminal into the device.  The four oxide-voltage evaluations (both
    overlaps, channel, bulk) are fused into a single density call on a
    stacked array — one pass through the shape function instead of four.
    """
    inversion = smooth_step_np(vg - vs - vth_eff, width=0.05)
    channel_potential = vs + 0.5 * np.maximum(
        np.minimum(vg - vth_eff, vd) - vs, 0.0
    )

    vox = np.concatenate([vg - vs, vg - vd, vg - channel_potential, vg - vb])

    def stack4(parameter: np.ndarray) -> np.ndarray:
        parameter = np.asarray(parameter)
        if parameter.ndim == 0:  # pragma: no cover - scalar parameter
            return parameter
        return np.concatenate([parameter] * 4)

    magnitude = tunneling_current_density_v(
        np.abs(vox),
        stack4(tox_nm),
        barrier_ev=stack4(barrier_ev),
        b_tox_per_nm=stack4(b_tox_per_nm),
        density_scale=stack4(density_scale),
        temp_factor=stack4(temp_factor),
    )
    density_so, density_do, density_channel, density_bulk = np.split(
        np.sign(vox) * magnitude, 4
    )

    igso = overlap_area_um2 * density_so * igate_scale
    igdo = overlap_area_um2 * density_do * igate_scale
    igc_total = gate_area_um2 * density_channel * inversion * igate_scale
    igb_acc = (
        gate_area_um2
        * density_bulk
        * accumulation_factor
        * (1.0 - inversion)
        * igate_scale
    )

    igb_inv = igc_total * gb_fraction
    igc_effective = igc_total - igb_inv
    # Smoothly blended source/drain partition; see the scalar twin for why
    # a fixed 0.6/0.4 split would make the KCL residual discontinuous.
    source_share = 0.4 + 0.2 * smooth_step_np(vd - vs, width=0.05)
    igcs = source_share * igc_effective
    igcd = (1.0 - source_share) * igc_effective
    return igso, igdo, igcs, igcd, igb_inv + igb_acc


def gate_tunneling_components_grad_v(
    vg: np.ndarray,
    vd: np.ndarray,
    vs: np.ndarray,
    vb: np.ndarray,
    *,
    vth_eff: np.ndarray,
    dvth_dd: np.ndarray,
    dvth_ds: np.ndarray,
    dvth_db: np.ndarray,
    tox_nm: np.ndarray,
    overlap_area_um2: np.ndarray,
    gate_area_um2: np.ndarray,
    accumulation_factor: np.ndarray,
    gb_fraction: np.ndarray,
    barrier_ev: np.ndarray,
    b_tox_per_nm: np.ndarray,
    density_scale: np.ndarray,
    temp_factor: np.ndarray,
    igate_scale: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Gate-tunneling components and their Jacobian in the normalized frame.

    Gradient twin of :func:`gate_tunneling_components_v`.  Returns
    ``(components, jacobian)`` where ``components`` stacks
    ``(igso, igdo, igcs, igcd, igb)`` along a leading axis of 5 and
    ``jacobian[c, x]`` is the partial of component ``c`` with respect to
    frame voltage ``x`` in ``(vg, vd, vs, vb)`` order.  ``dvth_dd`` /
    ``dvth_ds`` / ``dvth_db`` are the partials of the effective threshold
    with respect to the ordered frame voltages (it never depends on the
    gate), so the inversion blend and channel-potential pinch-off chains
    through the threshold are included.  The two non-smooth points of the
    value path — the ``min`` select of the channel pinch-off and its
    ``max(…, 0)`` clamp — take the same branch as ``np.minimum`` /
    ``np.maximum`` do (first argument at ties, inactive side at the clamp).
    """
    width = 0.05
    x_inversion = vg - vs - vth_eff
    inversion = smooth_step_np(x_inversion, width=width)
    inversion_slope = smooth_step_grad_np(x_inversion, width=width)
    # Partials of the inversion argument wrt (g, d, s, b).
    x_inv_grad = (1.0, -dvth_dd, -1.0 - dvth_ds, -dvth_db)

    pinch = vg - vth_eff
    takes_pinch = pinch <= vd  # np.minimum returns its first argument at ties
    limited = np.minimum(pinch, vd)
    excess = limited - vs
    conducting = excess > 0.0
    channel_potential = vs + 0.5 * np.maximum(excess, 0.0)
    limited_grad = (
        np.where(takes_pinch, 1.0, 0.0),
        np.where(takes_pinch, -dvth_dd, 1.0),
        np.where(takes_pinch, -dvth_ds, 0.0),
        np.where(takes_pinch, -dvth_db, 0.0),
    )
    half = np.where(conducting, 0.5, 0.0)
    potential_grad = (
        half * limited_grad[0],
        half * limited_grad[1],
        1.0 + half * (limited_grad[2] - 1.0),
        half * limited_grad[3],
    )

    vox = np.concatenate([vg - vs, vg - vd, vg - channel_potential, vg - vb])

    def stack4(parameter: np.ndarray) -> np.ndarray:
        parameter = np.asarray(parameter)
        if parameter.ndim == 0:  # pragma: no cover - scalar parameter
            return parameter
        return np.concatenate([parameter] * 4)

    magnitude, magnitude_grad = tunneling_current_density_grad_v(
        np.abs(vox),
        stack4(tox_nm),
        barrier_ev=stack4(barrier_ev),
        b_tox_per_nm=stack4(b_tox_per_nm),
        density_scale=stack4(density_scale),
        temp_factor=stack4(temp_factor),
    )
    density_so, density_do, density_channel, density_bulk = np.split(
        np.sign(vox) * magnitude, 4
    )
    # The signed density is odd in vox, so its derivative is the (even)
    # magnitude derivative — no sign factor (see the grad twin's docstring).
    slope_so, slope_do, slope_channel, slope_bulk = np.split(magnitude_grad, 4)

    # Value grouping mirrors gate_tunneling_components_v bitwise.
    igso = overlap_area_um2 * density_so * igate_scale
    igdo = overlap_area_um2 * density_do * igate_scale
    igc_total = gate_area_um2 * density_channel * inversion * igate_scale
    igb_acc = (
        gate_area_um2
        * density_bulk
        * accumulation_factor
        * (1.0 - inversion)
        * igate_scale
    )
    igb_inv = igc_total * gb_fraction
    igc_effective = igc_total - igb_inv
    share = 0.4 + 0.2 * smooth_step_np(vd - vs, width=width)
    share_slope = 0.2 * smooth_step_grad_np(vd - vs, width=width)
    igcs = share * igc_effective
    igcd = (1.0 - share) * igc_effective
    igb = igb_inv + igb_acc
    overlap = overlap_area_um2 * igate_scale
    area = gate_area_um2 * igate_scale

    # Frame partials of each oxide voltage, (vg, vd, vs, vb) order.
    vox_so_grad = (1.0, 0.0, -1.0, 0.0)
    vox_do_grad = (1.0, -1.0, 0.0, 0.0)
    vox_bulk_grad = (1.0, 0.0, 0.0, -1.0)
    share_grad = (0.0, share_slope, -share_slope, 0.0)

    shape = np.broadcast_shapes(
        np.shape(vg), np.shape(vd), np.shape(vs), np.shape(vb), np.shape(igso)
    )
    components = np.empty((5,) + shape)
    for row, values in enumerate((igso, igdo, igcs, igcd, igb)):
        components[row] = values

    jacobian = np.empty((5, 4) + shape)
    for x in range(4):
        vox_channel_grad = (
            (1.0 if x == 0 else 0.0) - potential_grad[x]
        )
        inversion_x = inversion_slope * x_inv_grad[x]
        igso_x = overlap * slope_so * vox_so_grad[x]
        igdo_x = overlap * slope_do * vox_do_grad[x]
        igc_total_x = area * (
            slope_channel * vox_channel_grad * inversion
            + density_channel * inversion_x
        )
        igb_acc_x = area * accumulation_factor * (
            slope_bulk * vox_bulk_grad[x] * (1.0 - inversion)
            - density_bulk * inversion_x
        )
        igc_effective_x = (1.0 - gb_fraction) * igc_total_x
        jacobian[0, x] = igso_x
        jacobian[1, x] = igdo_x
        jacobian[2, x] = share_grad[x] * igc_effective + share * igc_effective_x
        jacobian[3, x] = (
            -share_grad[x] * igc_effective + (1.0 - share) * igc_effective_x
        )
        jacobian[4, x] = gb_fraction * igc_total_x + igb_acc_x
    return components, jacobian


class GateTunnelingComponents:
    """Signed gate-tunneling component currents of one transistor.

    All currents are expressed in the *normalized* (NMOS-like) voltage frame
    and use the convention "positive = conventional current flowing from the
    gate terminal into the device".  The mirroring for PMOS happens in
    :class:`repro.device.mosfet.Mosfet`.

    Attributes
    ----------
    igso / igdo:
        Gate-to-source / gate-to-drain overlap currents (signed).
    igcs / igcd:
        Source / drain partitions of the gate-to-channel current (signed).
    igb:
        Gate-to-substrate current (signed).
    """

    __slots__ = ("igso", "igdo", "igcs", "igcd", "igb")

    def __init__(
        self, igso: float, igdo: float, igcs: float, igcd: float, igb: float
    ) -> None:
        self.igso = igso
        self.igdo = igdo
        self.igcs = igcs
        self.igcd = igcd
        self.igb = igb

    @property
    def total_gate_terminal(self) -> float:
        """Total signed current leaving the gate terminal into the device."""
        return self.igso + self.igdo + self.igcs + self.igcd + self.igb

    @property
    def magnitude(self) -> float:
        """Sum of component magnitudes (the 'gate leakage' of reports)."""
        return (
            abs(self.igso)
            + abs(self.igdo)
            + abs(self.igcs)
            + abs(self.igcd)
            + abs(self.igb)
        )


def gate_tunneling_components(
    device: DeviceParams,
    vg: float,
    vd: float,
    vs: float,
    vb: float,
    temperature_k: float,
    vth_eff: float,
) -> GateTunnelingComponents:
    """Compute the gate tunneling components in the normalized frame.

    Parameters
    ----------
    device:
        Device flavour; supplies areas, oxide thickness and tunneling
        parameters.
    vg, vd, vs, vb:
        Normalized node voltages (an NMOS sees them as-is; a PMOS is mirrored
        by the caller).
    vth_eff:
        Effective threshold voltage used to decide whether the channel is
        inverted (gate-to-channel tunneling requires an inverted channel).
    """
    params = device.gate_tunneling
    tox = device.tox_nm
    scale = device.igate_scale

    overlap_area = device.overlap_area_um2
    channel_area = device.gate_area_um2

    def signed_density(vox: float) -> float:
        density = tunneling_current_density(vox, tox, params, temperature_k)
        return math.copysign(density, vox) if vox != 0.0 else 0.0

    # Overlap currents exist for any gate-to-extension bias.
    igso = overlap_area * signed_density(vg - vs) * scale
    igdo = overlap_area * signed_density(vg - vd) * scale

    # Gate-to-channel tunneling requires an inverted channel; the degree of
    # inversion is blended smoothly around threshold so the solver sees a
    # continuous function of the gate voltage.
    vgs = vg - vs
    inversion = smooth_step(vgs - vth_eff, width=0.05)
    channel_potential = vs + 0.5 * max(min(vg - vth_eff, vd) - vs, 0.0)
    vox_channel = vg - channel_potential
    igc_total = channel_area * signed_density(vox_channel) * inversion * scale

    # When the channel is not inverted a weaker gate-to-bulk (accumulation /
    # depletion) tunneling path remains.
    vox_bulk = vg - vb
    igb_acc = (
        channel_area
        * signed_density(vox_bulk)
        * params.accumulation_factor
        * (1.0 - inversion)
        * scale
    )

    igb_inv = igc_total * params.gb_fraction
    igc_effective = igc_total - igb_inv

    # The channel current partitions between source and drain ends; with the
    # drain at a higher potential the source end sees the larger oxide field,
    # so it receives the larger share.  The share is blended smoothly from
    # 0.5/0.5 at Vds = 0 toward the asymptotic 0.6/0.4 split: the caller
    # orders source/drain by potential, so a fixed asymmetric split would
    # make the terminal currents jump when a floating node crosses its
    # neighbour's voltage — a residual discontinuity that leaves the DC
    # solvers' root location ill-defined at exactly the stack-node
    # equilibria the characterization sweeps sit on.
    source_share = 0.4 + 0.2 * smooth_step(vd - vs, width=0.05)
    igcs = source_share * igc_effective
    igcd = (1.0 - source_share) * igc_effective

    return GateTunnelingComponents(
        igso=igso,
        igdo=igdo,
        igcs=igcs,
        igcd=igcd,
        igb=igb_inv + igb_acc,
    )
