"""Four-terminal MOSFET element combining all leakage mechanisms.

:class:`Mosfet` is the single point where the component models of
:mod:`repro.device.subthreshold`, :mod:`repro.device.gate_tunneling` and
:mod:`repro.device.btbt` are composed into terminal currents.  It is used in
two ways:

* the transistor-level DC solver (:mod:`repro.spice`) evaluates
  :meth:`Mosfet.terminal_currents` inside every Kirchhoff residual, and
* leakage reports read the per-component breakdown
  (:class:`MosfetCurrents`) after the operating point has been found.

Polarity handling: a PMOS is evaluated by mirroring all node voltages about
zero, evaluating the NMOS-like equations with the PMOS parameter set, and
negating the resulting terminal currents.  This keeps every component model
single-polarity and therefore simple to test.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.device.btbt import junction_btbt_current
from repro.device.gate_tunneling import gate_tunneling_components
from repro.device.params import DeviceParams, Polarity
from repro.device.subthreshold import channel_current, effective_threshold


@dataclass(frozen=True)
class MosfetCurrents:
    """Terminal currents and component breakdown of one transistor.

    Terminal currents (``ig``, ``id``, ``is_``, ``ib``) follow the convention
    "positive = conventional current flowing from the circuit node *into* the
    device through that terminal"; they always sum to (numerically) zero.

    The component fields are magnitudes in amperes:

    * ``i_channel`` — signed drain-to-source channel current (device frame);
    * ``i_subthreshold`` — channel-current magnitude attributed to
      subthreshold conduction (zero for a transistor that is on);
    * ``i_gate`` — total gate-tunneling magnitude (|Igso|+|Igdo|+|Igc|+|Igb|);
    * ``i_gate_terminal`` — signed current entering the device through the
      gate terminal (what a driving net actually sees);
    * ``i_btbt`` — total junction BTBT magnitude (drain + source junctions).
    """

    ig: float
    id: float
    is_: float
    ib: float
    i_channel: float
    i_subthreshold: float
    i_gate: float
    i_gate_terminal: float
    i_btbt: float
    is_off: bool

    @property
    def total_leakage(self) -> float:
        """Return the per-transistor leakage figure used in reports."""
        return self.i_subthreshold + self.i_gate + self.i_btbt

    @property
    def kcl_residual(self) -> float:
        """Return the sum of terminal currents (should be ~0)."""
        return self.ig + self.id + self.is_ + self.ib


class Mosfet:
    """A four-terminal transistor instance bound to a device flavour.

    Parameters
    ----------
    device:
        The :class:`~repro.device.params.DeviceParams` flavour.
    width_nm:
        Optional instance width override (gate templates size stacks wider).
    vth_shift:
        Static threshold shift in volts applied on top of the model; process
        variation sampling uses this hook for per-transistor Vth variation.
    name:
        Optional instance name used in netlist diagnostics.
    """

    __slots__ = ("device", "vth_shift", "name")

    def __init__(
        self,
        device: DeviceParams,
        width_nm: float | None = None,
        vth_shift: float = 0.0,
        name: str = "",
    ) -> None:
        if width_nm is not None:
            device = device.replace(width_nm=width_nm)
        self.device = device
        self.vth_shift = vth_shift
        self.name = name

    @property
    def polarity(self) -> Polarity:
        """Return the transistor polarity."""
        return self.device.polarity

    def terminal_currents(
        self,
        vg: float,
        vd: float,
        vs: float,
        vb: float,
        temperature_k: float,
    ) -> MosfetCurrents:
        """Return terminal currents for the given node voltages.

        ``vg``/``vd``/``vs``/``vb`` are the actual circuit node voltages; the
        polarity mirroring happens internally.
        """
        (
            ig,
            idr,
            isr,
            ib,
            i_channel,
            i_subthreshold,
            i_gate,
            i_btbt,
            off,
        ) = self._compute(vg, vd, vs, vb, temperature_k)
        return MosfetCurrents(
            ig=ig,
            id=idr,
            is_=isr,
            ib=ib,
            i_channel=i_channel,
            i_subthreshold=i_subthreshold,
            i_gate=i_gate,
            i_gate_terminal=ig,
            i_btbt=i_btbt,
            is_off=off,
        )

    def kcl_currents(
        self,
        vg: float,
        vd: float,
        vs: float,
        vb: float,
        temperature_k: float,
    ) -> tuple[float, float, float, float]:
        """Return only the (gate, drain, source, bulk) terminal currents.

        This is the hot path of the DC solver's Kirchhoff residuals; it skips
        the :class:`MosfetCurrents` container construction.
        """
        result = self._compute(vg, vd, vs, vb, temperature_k)
        return result[0], result[1], result[2], result[3]

    def _compute(
        self,
        vg: float,
        vd: float,
        vs: float,
        vb: float,
        temperature_k: float,
    ) -> tuple[float, float, float, float, float, float, float, float, bool]:
        """Evaluate the device; shared by the report and solver paths."""
        sign = self.device.polarity.sign
        # Normalize: an NMOS is evaluated as-is, a PMOS with mirrored voltages.
        nvg, nvd, nvs, nvb = sign * vg, sign * vd, sign * vs, sign * vb

        # Source/drain ordering in the normalized frame: the terminal at the
        # lower potential acts as the source.
        swapped = nvd < nvs
        if swapped:
            nvd, nvs = nvs, nvd

        vgs = nvg - nvs
        vds = nvd - nvs
        vbs = nvb - nvs

        device = self.device
        vth_eff = (
            effective_threshold(device, vds, vbs, temperature_k) + self.vth_shift
        )

        i_ch = channel_current(
            device, vgs, vds, vbs, temperature_k, vth_shift=self.vth_shift
        )
        off = vgs < vth_eff

        gate = gate_tunneling_components(
            device, nvg, nvd, nvs, nvb, temperature_k, vth_eff
        )

        i_btbt_d = junction_btbt_current(device, nvd, nvb, temperature_k)
        i_btbt_s = junction_btbt_current(device, nvs, nvb, temperature_k)

        # Assemble terminal currents in the normalized frame.
        # Channel current flows drain -> source inside the device.
        i_drain = i_ch
        i_source = -i_ch
        # Gate tunneling: positive component = current from gate into device,
        # exiting through the corresponding terminal.
        i_gate_term = gate.total_gate_terminal
        i_drain -= gate.igdo + gate.igcd
        i_source -= gate.igso + gate.igcs
        i_bulk = -gate.igb
        # Junction BTBT: current flows from the (n+) diffusion into the bulk.
        i_drain += i_btbt_d
        i_source += i_btbt_s
        i_bulk -= i_btbt_d + i_btbt_s

        # Undo the source/drain swap.
        if swapped:
            i_drain, i_source = i_source, i_drain

        # Undo the polarity mirroring: mirrored voltages produce mirrored
        # currents, so real currents are the normalized ones times the sign.
        ig = sign * i_gate_term
        idr = sign * i_drain
        isr = sign * i_source
        ib = sign * i_bulk

        return (
            ig,
            idr,
            isr,
            ib,
            sign * i_ch if not swapped else -sign * i_ch,
            abs(i_ch) if off else 0.0,
            gate.magnitude,
            i_btbt_d + i_btbt_s,
            off,
        )

    def gate_pin_current(
        self,
        vg: float,
        vd: float,
        vs: float,
        vb: float,
        temperature_k: float,
    ) -> float:
        """Return the signed current the driving net must supply to the gate.

        Positive means current flows from the net into this gate terminal
        (the net is "loaded down"); negative means the transistor injects
        current back into the net (the net is "pulled up").  This is the
        quantity summed into the paper's loading currents I_L-IN / I_L-OUT.
        """
        return self.terminal_currents(vg, vd, vs, vb, temperature_k).ig

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Mosfet(name={self.name!r}, device={self.device.name!r}, "
            f"W={self.device.width_nm:.0f}nm)"
        )
