"""Parameter containers for the compact leakage models.

The parameters are deliberately split per mechanism so experiments can vary
one leakage component at a time (Section 5.1 of the paper studies devices in
which a chosen component dominates).  All containers are frozen dataclasses;
"what-if" variants are created through :meth:`DeviceParams.replace` so that a
characterized device can never be mutated behind a cache's back.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass


class Polarity(enum.Enum):
    """Transistor polarity."""

    NMOS = "nmos"
    PMOS = "pmos"

    @property
    def sign(self) -> int:
        """Return +1 for NMOS, -1 for PMOS (voltage normalization sign)."""
        return 1 if self is Polarity.NMOS else -1


@dataclass(frozen=True)
class SubthresholdParams:
    """Parameters of the weak-inversion (subthreshold) channel-current model.

    Attributes
    ----------
    vth0:
        Long-channel zero-bias threshold-voltage magnitude in volts.
    dibl:
        Drain-induced barrier lowering coefficient (V of Vth reduction per V
        of drain-source bias).
    body_gamma:
        Body-effect coefficient in V**0.5.
    phi_s:
        Surface potential (2*phi_F) used by the body-effect term, in volts.
    n_swing:
        Subthreshold swing ideality factor (S = n_swing * vT * ln 10).
    mobility_m2:
        Low-field effective mobility in m^2/(V*s) at 300 K.
    mobility_temp_exponent:
        Mobility temperature exponent: mu(T) = mu * (T/300)**(-exponent).
    vth_temp_coeff:
        Threshold-voltage temperature coefficient in V/K (negative: Vth drops
        as temperature rises, raising the subthreshold current).
    sce_tox_coeff:
        Short-channel Vth sensitivity to oxide thickness in V/nm.  A thicker
        oxide weakens gate control, lowering Vth and *raising* the
        subthreshold current (paper Fig. 4b).
    sce_length_coeff:
        Vth roll-off slope in V/nm of channel length: a shorter channel has a
        lower threshold.
    halo_vth_coeff:
        Vth increase in volts per decade of halo-doping increase relative to
        the reference halo dose (halo implants suppress the short-channel
        effect, paper Fig. 4a).
    theta_mobility:
        Vertical-field mobility degradation coefficient in 1/V, applied above
        threshold: mu_eff = mu / (1 + theta * (Vgs - Vth)).  It lowers the
        on-state conductance (and therefore sets how far a loading current
        can move a driven net) without touching the subthreshold region.
    tox_ref_nm / length_ref_nm:
        Reference oxide thickness and channel length the short-channel Vth
        sensitivities are anchored to (normally the preset's nominal
        geometry).  When left at ``None`` the corresponding geometry shift is
        disabled; presets always set them so oxide-thickness sweeps
        (Fig. 4b) and process variation in L/Tox move the threshold.
    """

    vth0: float
    dibl: float
    body_gamma: float
    phi_s: float
    n_swing: float
    mobility_m2: float
    mobility_temp_exponent: float
    vth_temp_coeff: float
    sce_tox_coeff: float
    sce_length_coeff: float
    halo_vth_coeff: float
    theta_mobility: float = 0.0
    tox_ref_nm: float | None = None
    length_ref_nm: float | None = None

    def __post_init__(self) -> None:
        if self.vth0 <= 0:
            raise ValueError(f"vth0 must be positive, got {self.vth0}")
        if self.n_swing < 1.0:
            raise ValueError(f"n_swing must be >= 1, got {self.n_swing}")
        if self.mobility_m2 <= 0:
            raise ValueError(f"mobility must be positive, got {self.mobility_m2}")
        if self.phi_s <= 0:
            raise ValueError(f"phi_s must be positive, got {self.phi_s}")
        if self.theta_mobility < 0:
            raise ValueError("theta_mobility must be non-negative")


@dataclass(frozen=True)
class GateTunnelingParams:
    """Parameters of the gate direct-tunneling model.

    Attributes
    ----------
    jg_ref:
        Gate tunneling current density in A/um^2 at the reference oxide
        voltage ``vref`` and reference oxide thickness ``tox_ref_nm``.  The
        physical tunneling shape function is scaled to hit this point, which
        is how the models are "extracted" in lieu of AURORA.
    vref:
        Reference oxide voltage in volts for ``jg_ref`` (typically VDD).
    tox_ref_nm:
        Reference oxide thickness in nm for ``jg_ref``.
    barrier_ev:
        Tunneling barrier height in eV (Si/SiO2 conduction band ~ 3.1 eV for
        electrons; the hole barrier is absorbed into ``jg_ref`` of the PMOS).
    b_tox_per_nm:
        Exponential thickness sensitivity in 1/nm: each additional nanometre
        of oxide attenuates the tunneling current by roughly
        ``exp(-b_tox_per_nm)`` at the reference bias.
    overlap_length_nm:
        Gate-to-source/drain overlap length in nm (sets the Igso/Igdo area).
    accumulation_factor:
        Relative strength of tunneling when the channel is not inverted
        (gate-to-bulk / accumulation leakage), as a fraction of the inverted
        channel tunneling at the same oxide voltage.
    gb_fraction:
        Fraction of the channel tunneling attributed to the gate-to-substrate
        path (Igb); the remainder splits between Igcs and Igcd.
    temp_coeff_per_k:
        Weak linear temperature coefficient (1/K); gate tunneling is nearly
        temperature independent (paper Fig. 4c).
    """

    jg_ref: float
    vref: float
    tox_ref_nm: float
    barrier_ev: float
    b_tox_per_nm: float
    overlap_length_nm: float
    accumulation_factor: float
    gb_fraction: float
    temp_coeff_per_k: float

    def __post_init__(self) -> None:
        if self.jg_ref < 0:
            raise ValueError(f"jg_ref must be non-negative, got {self.jg_ref}")
        if self.vref <= 0:
            raise ValueError(f"vref must be positive, got {self.vref}")
        if self.tox_ref_nm <= 0:
            raise ValueError(f"tox_ref_nm must be positive, got {self.tox_ref_nm}")
        if self.barrier_ev <= 0:
            raise ValueError(f"barrier_ev must be positive, got {self.barrier_ev}")
        if not 0.0 <= self.gb_fraction < 1.0:
            raise ValueError(f"gb_fraction must be in [0, 1), got {self.gb_fraction}")


@dataclass(frozen=True)
class BtbtParams:
    """Parameters of the junction band-to-band-tunneling model.

    Attributes
    ----------
    jbtbt_ref:
        BTBT current density in A/um^2 of junction area at the reference
        reverse bias ``vref`` and reference halo doping ``halo_ref_cm3``.
    vref:
        Reference reverse bias in volts (typically VDD).
    halo_ref_cm3:
        Reference halo (effective junction) doping in cm^-3.
    halo_cm3:
        Actual halo doping of this device in cm^-3.  BTBT grows roughly
        exponentially with the junction field, i.e. with sqrt(doping).
    psi_bi:
        Junction built-in potential in volts.
    field_exponent:
        Dimensionless exponent of the Kane-model field term retained in the
        calibrated shape function (kept at 1.0 in presets).
    b_field:
        Kane exponential factor expressed relative to the reference field
        (dimensionless); larger values make BTBT more sensitive to bias and
        doping.
    junction_depth_nm:
        Effective junction depth in nm (sets the junction area together with
        the device width).
    bandgap_sensitivity:
        Exponent applied to the bandgap ratio Eg(T)/Eg(300K) inside the
        exponential; bandgap narrowing makes BTBT increase marginally with
        temperature (paper Fig. 4c).
    """

    jbtbt_ref: float
    vref: float
    halo_ref_cm3: float
    halo_cm3: float
    psi_bi: float
    field_exponent: float
    b_field: float
    junction_depth_nm: float
    bandgap_sensitivity: float

    def __post_init__(self) -> None:
        if self.jbtbt_ref < 0:
            raise ValueError(f"jbtbt_ref must be non-negative, got {self.jbtbt_ref}")
        if self.halo_cm3 <= 0 or self.halo_ref_cm3 <= 0:
            raise ValueError("halo doping must be positive")
        if self.psi_bi <= 0:
            raise ValueError(f"psi_bi must be positive, got {self.psi_bi}")
        if self.junction_depth_nm <= 0:
            raise ValueError("junction_depth_nm must be positive")


@dataclass(frozen=True)
class DeviceParams:
    """Complete parameter set of a single transistor flavour.

    A :class:`DeviceParams` is what the paper would call "a device": a
    MEDICI-designed NMOS or PMOS of a given geometry whose leakage components
    have been extracted.  Gate templates scale ``width_nm`` per instance; the
    other geometry is part of the flavour.

    Attributes
    ----------
    name:
        Human-readable identifier, e.g. ``"nmos-50nm"``.
    polarity:
        NMOS or PMOS.
    width_nm / length_nm / tox_nm:
        Drawn width, channel length, and oxide thickness in nm.
    subthreshold / gate_tunneling / btbt:
        Per-mechanism parameter groups.
    isub_scale / igate_scale / ibtbt_scale:
        Dimensionless calibration multipliers applied to each mechanism;
        presets use them to realise the D25-S / D25-G / D25-JN variants
        without re-deriving physical parameters.
    """

    name: str
    polarity: Polarity
    width_nm: float
    length_nm: float
    tox_nm: float
    subthreshold: SubthresholdParams
    gate_tunneling: GateTunnelingParams
    btbt: BtbtParams
    isub_scale: float = 1.0
    igate_scale: float = 1.0
    ibtbt_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.width_nm <= 0:
            raise ValueError(f"width_nm must be positive, got {self.width_nm}")
        if self.length_nm <= 0:
            raise ValueError(f"length_nm must be positive, got {self.length_nm}")
        if self.tox_nm <= 0:
            raise ValueError(f"tox_nm must be positive, got {self.tox_nm}")
        if min(self.isub_scale, self.igate_scale, self.ibtbt_scale) < 0:
            raise ValueError("leakage scale factors must be non-negative")

    @property
    def is_nmos(self) -> bool:
        """Return True for an NMOS flavour."""
        return self.polarity is Polarity.NMOS

    @property
    def gate_area_um2(self) -> float:
        """Return the gate (channel) area in um^2."""
        return (self.width_nm / 1000.0) * (self.length_nm / 1000.0)

    @property
    def overlap_area_um2(self) -> float:
        """Return the gate-to-S/D overlap area (one side) in um^2."""
        return (self.width_nm / 1000.0) * (
            self.gate_tunneling.overlap_length_nm / 1000.0
        )

    @property
    def junction_area_um2(self) -> float:
        """Return the effective drain (or source) junction area in um^2."""
        return (self.width_nm / 1000.0) * (self.btbt.junction_depth_nm / 1000.0)

    def replace(self, **changes: object) -> "DeviceParams":
        """Return a copy of this device with top-level fields replaced.

        Nested parameter groups can be replaced wholesale; use
        :meth:`replace_subthreshold` (and siblings) to tweak single fields of
        a nested group.
        """
        return dataclasses.replace(self, **changes)

    def replace_subthreshold(self, **changes: object) -> "DeviceParams":
        """Return a copy with fields of the subthreshold group replaced."""
        return dataclasses.replace(
            self, subthreshold=dataclasses.replace(self.subthreshold, **changes)
        )

    def replace_gate_tunneling(self, **changes: object) -> "DeviceParams":
        """Return a copy with fields of the gate-tunneling group replaced."""
        return dataclasses.replace(
            self, gate_tunneling=dataclasses.replace(self.gate_tunneling, **changes)
        )

    def replace_btbt(self, **changes: object) -> "DeviceParams":
        """Return a copy with fields of the BTBT group replaced."""
        return dataclasses.replace(
            self, btbt=dataclasses.replace(self.btbt, **changes)
        )

    def scaled_width(self, factor: float) -> "DeviceParams":
        """Return a copy whose width is multiplied by ``factor``.

        Gate templates use this to size series stacks and wide PMOS pull-ups.
        """
        if factor <= 0:
            raise ValueError(f"width scale factor must be positive, got {factor}")
        return self.replace(width_nm=self.width_nm * factor)


@dataclass(frozen=True)
class TechnologyParams:
    """Technology-level context shared by every transistor of a design.

    Attributes
    ----------
    name:
        Technology identifier, e.g. ``"bulk-25nm"``.
    vdd:
        Nominal supply voltage in volts.
    temperature_k:
        Nominal operating temperature in kelvin.
    nmos / pmos:
        The NMOS and PMOS device flavours of the technology.
    """

    name: str
    vdd: float
    temperature_k: float
    nmos: DeviceParams
    pmos: DeviceParams

    def __post_init__(self) -> None:
        if self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        if self.temperature_k <= 0:
            raise ValueError("temperature_k must be positive")
        if not self.nmos.is_nmos:
            raise ValueError("nmos flavour must have NMOS polarity")
        if self.pmos.is_nmos:
            raise ValueError("pmos flavour must have PMOS polarity")

    def replace(self, **changes: object) -> "TechnologyParams":
        """Return a copy of the technology with fields replaced."""
        return dataclasses.replace(self, **changes)

    def at_temperature(self, temperature_k: float) -> "TechnologyParams":
        """Return a copy of the technology at a different temperature."""
        return self.replace(temperature_k=temperature_k)

    def device(self, polarity: Polarity) -> DeviceParams:
        """Return the device flavour for ``polarity``."""
        return self.nmos if polarity is Polarity.NMOS else self.pmos
