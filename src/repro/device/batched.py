"""Packed, batched evaluation of the MOSFET leakage models.

:class:`PackedMosfets` is the device-layer backend of the batched DC solver
(:mod:`repro.spice.batched`).  It takes a *grid* of
:class:`~repro.device.mosfet.Mosfet` instances — ``T`` transistor slots (one
per transistor of a netlist topology) by ``B`` batch instances (one per
netlist being solved) — extracts every model parameter into NumPy arrays,
pre-computes all bias-independent quantities at the solve temperature, and
evaluates terminal / component currents for the whole grid in one array pass.

Parameter arrays that are constant along the batch axis (the common case:
only Monte-Carlo inter-die variation perturbs device parameters between batch
instances) are stored with a broadcast axis of length one, so a
characterization batch pays almost nothing for carrying its parameters.

The arithmetic deliberately mirrors :meth:`Mosfet._compute` operation for
operation (same normalization, same source/drain ordering, same assembly
order), and the bias-independent pre-computations reuse the scalar model
functions, so the batched path agrees with the scalar oracle to rounding
error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.device.btbt import (
    _temperature_factor,
    btbt_current_density_grad_v,
    btbt_current_density_v,
)
from repro.device.gate_tunneling import (
    _shape_function,
    gate_tunneling_components_grad_v,
    gate_tunneling_components_v,
)
from repro.device.mosfet import Mosfet
from repro.device.params import DeviceParams
from repro.device.subthreshold import (
    channel_current_grad_v,
    channel_current_v,
    effective_threshold,
    effective_threshold_grad_v,
    effective_threshold_v,
    specific_current,
)
from repro.utils.constants import ROOM_TEMPERATURE_K
from repro.utils.mathtools import safe_exp

#: Names of every parameter array a :class:`PackedMosfets` carries.
_ARRAY_FIELDS = (
    "sign",
    "vth_base",
    "body_gamma",
    "phi_s",
    "sqrt_phi_s",
    "dibl",
    "n_swing",
    "theta_mobility",
    "i_spec",
    "isub_scale",
    "tox_nm",
    "overlap_area",
    "gate_area",
    "accumulation_factor",
    "gb_fraction",
    "barrier_ev",
    "b_tox_per_nm",
    "gt_density_scale",
    "gt_temp_factor",
    "igate_scale",
    "jbtbt_ref",
    "btbt_vref",
    "psi_bi",
    "field_exponent",
    "field_scale",
    "b_eff",
    "btbt_reference",
    "junction_area",
    "ibtbt_scale",
)


def _device_constants(device: DeviceParams, temperature_k: float) -> tuple:
    """Return the bias-independent per-device quantities, in field order.

    The threshold base is the scalar :func:`effective_threshold` evaluated at
    ``vds = vbs = 0`` (where the body and DIBL terms vanish), so every static
    contribution — vth0, temperature, geometry roll-off, halo — is inherited
    from the oracle implementation verbatim.
    """
    sub = device.subthreshold
    gt = device.gate_tunneling
    bt = device.btbt
    gt_reference = _shape_function(gt.vref, gt.tox_ref_nm, gt)
    return (
        float(device.polarity.sign),
        effective_threshold(device, 0.0, 0.0, temperature_k),
        sub.body_gamma,
        sub.phi_s,
        float(np.sqrt(sub.phi_s)),
        sub.dibl,
        sub.n_swing,
        sub.theta_mobility,
        specific_current(device, temperature_k),
        device.isub_scale,
        device.tox_nm,
        device.overlap_area_um2,
        device.gate_area_um2,
        gt.accumulation_factor,
        gt.gb_fraction,
        gt.barrier_ev,
        gt.b_tox_per_nm,
        gt.jg_ref / gt_reference if gt_reference > 0.0 else 0.0,
        1.0 + gt.temp_coeff_per_k * (temperature_k - ROOM_TEMPERATURE_K),
        device.igate_scale,
        bt.jbtbt_ref,
        bt.vref,
        bt.psi_bi,
        bt.field_exponent,
        float(np.sqrt(bt.halo_cm3 / (bt.halo_ref_cm3 * (bt.vref + bt.psi_bi)))),
        bt.b_field * _temperature_factor(bt, temperature_k),
        safe_exp(-bt.b_field),
        device.junction_area_um2,
        device.ibtbt_scale,
    )


def _compress(array: np.ndarray) -> np.ndarray:
    """Collapse a ``(T, B)`` array to ``(T, 1)`` when constant along the batch."""
    if array.shape[1] > 1 and np.all(array == array[:, :1]):
        return np.ascontiguousarray(array[:, :1])
    return array


@dataclass(frozen=True)
class ComponentCurrents:
    """Vectorized leakage-component currents of a packed transistor grid.

    All arrays share the grid shape; magnitudes follow the conventions of
    :class:`~repro.device.mosfet.MosfetCurrents` (``ig`` is the signed
    circuit-frame gate-terminal current, the components are magnitudes).
    """

    ig: np.ndarray
    i_subthreshold: np.ndarray
    i_gate: np.ndarray
    i_btbt: np.ndarray


class PackedMosfets:
    """A ``(T slots, B instances)`` grid of MOSFETs packed into arrays.

    Parameters
    ----------
    grid:
        ``T`` sequences of ``B`` :class:`Mosfet` instances each; slot ``t``
        of instance ``b`` must be the same *topological* transistor (same
        polarity) in every instance, while its parameters (flavour shifts,
        per-instance ``vth_shift``) may differ.
    temperature_k:
        The solve temperature; every temperature-dependent quantity is baked
        in at construction.
    """

    def __init__(self, grid: Sequence[Sequence[Mosfet]], temperature_k: float) -> None:
        if not grid or not grid[0]:
            raise ValueError("PackedMosfets needs at least one transistor and instance")
        self.temperature_k = float(temperature_k)
        self.slots = len(grid)
        self.batch = len(grid[0])

        memo: dict[DeviceParams, tuple] = {}
        raw = np.empty((len(_ARRAY_FIELDS), self.slots, self.batch))
        for t, row in enumerate(grid):
            if len(row) != self.batch:
                raise ValueError("all transistor slots must have the same batch size")
            first = row[0]
            if all(mosfet is first for mosfet in row):
                # Shared-netlist batches (the reference path) hand the same
                # Mosfet object to every column of a slot: extract once,
                # broadcast across the row instead of per-column assignment.
                constants = memo.get(first.device)
                if constants is None:
                    constants = _device_constants(first.device, self.temperature_k)
                    memo[first.device] = constants
                raw[:, t, :] = np.asarray(constants)[:, None]
                raw[1, t, :] += first.vth_shift
                continue
            for b, mosfet in enumerate(row):
                constants = memo.get(mosfet.device)
                if constants is None:
                    constants = _device_constants(mosfet.device, self.temperature_k)
                    memo[mosfet.device] = constants
                raw[:, t, b] = constants
                # vth_shift rides on top of the static threshold, exactly as
                # the scalar path adds it after effective_threshold().
                raw[1, t, b] += mosfet.vth_shift
        for name, values in zip(_ARRAY_FIELDS, raw):
            setattr(self, name, _compress(values))
        self._btbt_stacked_cache = None

        signs = np.unique(self.sign)
        if not np.all(np.isin(signs, (-1.0, 1.0))):  # pragma: no cover - defensive
            raise ValueError("transistor polarity signs must be +/-1")
        if self.sign.shape[1] != 1:
            raise ValueError("a transistor slot must keep one polarity across the batch")

    # ------------------------------------------------------------------ #
    # subsetting
    # ------------------------------------------------------------------ #
    def _subset(self, selector) -> "PackedMosfets":
        clone = object.__new__(PackedMosfets)
        clone.temperature_k = self.temperature_k
        for name in _ARRAY_FIELDS:
            setattr(clone, name, selector(getattr(self, name)))
        clone.slots = clone.sign.shape[0]
        clone.batch = max(getattr(clone, name).shape[1] for name in _ARRAY_FIELDS)
        clone._btbt_stacked_cache = None
        return clone

    def _btbt_stacked(self) -> dict[str, np.ndarray]:
        """Return the BTBT parameter arrays pre-stacked for both junctions.

        The drain and source junctions evaluate as one fused density call
        over row-stacked inputs; the parameter halves are identical and
        bias-independent, so stacking them per residual evaluation (the
        solver hot path) was pure overhead.  Built lazily because subsets
        (``rows``/``take_columns``) re-slice the base arrays.
        """
        cached = self._btbt_stacked_cache
        if cached is None:
            def stack2(parameter: np.ndarray) -> np.ndarray:
                return np.concatenate([parameter] * 2)

            cached = {
                "params": dict(
                    jbtbt_ref=stack2(self.jbtbt_ref),
                    vref=stack2(self.btbt_vref),
                    psi_bi=stack2(self.psi_bi),
                    field_exponent=stack2(self.field_exponent),
                    field_scale=stack2(self.field_scale),
                    b_eff=stack2(self.b_eff),
                    reference=stack2(self.btbt_reference),
                ),
                "area_scale": stack2(self.junction_area * self.ibtbt_scale),
            }
            self._btbt_stacked_cache = cached
        return cached

    def rows(self, indices: Sequence[int]) -> "PackedMosfets":
        """Return a row (transistor-slot) subset; repeats are allowed."""
        index = np.asarray(indices, dtype=int)
        return self._subset(lambda a: a[index])

    def take_columns(self, columns: np.ndarray) -> "PackedMosfets":
        """Return a batch-column subset (broadcast columns stay broadcast)."""
        return self._subset(lambda a: a[:, columns] if a.shape[1] > 1 else a)

    # ------------------------------------------------------------------ #
    # evaluation
    # ------------------------------------------------------------------ #
    def _normalized(self, vg, vd, vs, vb):
        """Mirror the scalar polarity/ordering normalization, vectorized."""
        sign = self.sign
        nvg, nvd, nvs, nvb = sign * vg, sign * vd, sign * vs, sign * vb
        swapped = nvd < nvs
        d = np.maximum(nvd, nvs)
        s = np.minimum(nvd, nvs)
        vgs = nvg - s
        vds = d - s
        vbs = nvb - s
        vth_eff = effective_threshold_v(
            vds,
            vbs,
            vth_base=self.vth_base,
            body_gamma=self.body_gamma,
            phi_s=self.phi_s,
            sqrt_phi_s=self.sqrt_phi_s,
            dibl=self.dibl,
        )
        return nvg, d, s, nvb, swapped, vgs, vds, vth_eff

    def _assemble(self, vg, vd, vs, vb):
        """Shared evaluation; returns everything both public paths need."""
        nvg, d, s, nvb, swapped, vgs, vds, vth_eff = self._normalized(vg, vd, vs, vb)

        i_ch = channel_current_v(
            vgs,
            vds,
            self.temperature_k,
            vth_eff=vth_eff,
            n_swing=self.n_swing,
            i_spec=self.i_spec,
            theta_mobility=self.theta_mobility,
            isub_scale=self.isub_scale,
        )

        igso, igdo, igcs, igcd, igb = gate_tunneling_components_v(
            nvg,
            d,
            s,
            nvb,
            vth_eff=vth_eff,
            tox_nm=self.tox_nm,
            overlap_area_um2=self.overlap_area,
            gate_area_um2=self.gate_area,
            accumulation_factor=self.accumulation_factor,
            gb_fraction=self.gb_fraction,
            barrier_ev=self.barrier_ev,
            b_tox_per_nm=self.b_tox_per_nm,
            density_scale=self.gt_density_scale,
            temp_factor=self.gt_temp_factor,
            igate_scale=self.igate_scale,
        )

        # Both junctions in one fused density evaluation (stacked rows); the
        # bias-independent parameter stacking is cached (see _btbt_stacked).
        stacked = self._btbt_stacked()
        scaled = (
            btbt_current_density_v(
                np.concatenate([d - nvb, s - nvb]), **stacked["params"]
            )
            * stacked["area_scale"]
        )
        half = scaled.shape[0] // 2
        i_btbt_d = scaled[:half]
        i_btbt_s = scaled[half:]

        i_drain = i_ch - igdo - igcd + i_btbt_d
        i_source = -i_ch - igso - igcs + i_btbt_s
        i_bulk = -igb - i_btbt_d - i_btbt_s
        i_gate_term = igso + igdo + igcs + igcd + igb

        sign = self.sign
        ig = sign * i_gate_term
        idr = sign * np.where(swapped, i_source, i_drain)
        isr = sign * np.where(swapped, i_drain, i_source)
        ib = sign * i_bulk
        return (
            ig,
            idr,
            isr,
            ib,
            i_ch,
            vgs,
            vth_eff,
            (igso, igdo, igcs, igcd, igb),
            i_btbt_d + i_btbt_s,
        )

    def kcl_currents(self, vg, vd, vs, vb):
        """Return the ``(gate, drain, source, bulk)`` terminal-current arrays.

        This is the hot path of the batched DC solver's Kirchhoff residuals;
        voltages are circuit-frame arrays broadcastable to the grid shape.
        """
        ig, idr, isr, ib, *_ = self._assemble(vg, vd, vs, vb)
        return ig, idr, isr, ib

    def kcl_jacobian(self, vg, vd, vs, vb):
        """Return the terminal currents *and* their per-device Jacobian.

        The analytic backend of the batched Newton solver
        (:mod:`repro.spice.newton`).  Returns ``(currents, jacobian)``:
        ``currents`` is the ``(gate, drain, source, bulk)`` tuple of
        :meth:`kcl_currents` and ``jacobian`` has shape ``(4, 4) + grid``
        with ``jacobian[i, j]`` the partial derivative of terminal current
        ``i`` with respect to terminal voltage ``j``, both indexed in
        ``(gate, drain, source, bulk)`` order and expressed in the *circuit*
        frame.  The polarity mirroring cancels out of the derivatives (both
        the current and the voltage mirror), and the source/drain ordering
        swap exchanges the drain/source rows *and* columns wherever a
        device's terminals are potential-ordered the other way around.
        """
        sign = self.sign
        nvg, nvd, nvs, nvb = sign * vg, sign * vd, sign * vs, sign * vb
        swapped = nvd < nvs
        d = np.maximum(nvd, nvs)
        s = np.minimum(nvd, nvs)
        vgs = nvg - s
        vds = d - s
        vbs = nvb - s
        vth_eff, vth_vds, vth_vbs = effective_threshold_grad_v(
            vds,
            vbs,
            vth_base=self.vth_base,
            body_gamma=self.body_gamma,
            phi_s=self.phi_s,
            sqrt_phi_s=self.sqrt_phi_s,
            dibl=self.dibl,
        )
        # Frame partials of the threshold wrt (d, s, b); vg never enters.
        vth_d = vth_vds
        vth_s = -(vth_vds + vth_vbs)
        vth_b = vth_vbs

        i_ch, ich_vgs, ich_vds, ich_vbs = channel_current_grad_v(
            vgs,
            vds,
            self.temperature_k,
            vth_eff=vth_eff,
            dvth_dvds=vth_vds,
            dvth_dvbs=vth_vbs,
            n_swing=self.n_swing,
            i_spec=self.i_spec,
            theta_mobility=self.theta_mobility,
            isub_scale=self.isub_scale,
        )
        # Chain (vgs, vds, vbs) -> frame (g, d, s, b).
        channel_grad = (
            ich_vgs,
            ich_vds,
            -(ich_vgs + ich_vds + ich_vbs),
            ich_vbs,
        )

        gt_components, gt_jacobian = gate_tunneling_components_grad_v(
            nvg,
            d,
            s,
            nvb,
            vth_eff=vth_eff,
            dvth_dd=vth_d,
            dvth_ds=vth_s,
            dvth_db=vth_b,
            tox_nm=self.tox_nm,
            overlap_area_um2=self.overlap_area,
            gate_area_um2=self.gate_area,
            accumulation_factor=self.accumulation_factor,
            gb_fraction=self.gb_fraction,
            barrier_ev=self.barrier_ev,
            b_tox_per_nm=self.b_tox_per_nm,
            density_scale=self.gt_density_scale,
            temp_factor=self.gt_temp_factor,
            igate_scale=self.igate_scale,
        )
        igso, igdo, igcs, igcd, igb = gt_components

        stacked = self._btbt_stacked()
        density, density_grad = btbt_current_density_grad_v(
            np.concatenate([d - nvb, s - nvb]), **stacked["params"]
        )
        scaled = density * stacked["area_scale"]
        scaled_grad = density_grad * stacked["area_scale"]
        half = scaled.shape[0] // 2
        i_btbt_d, i_btbt_s = scaled[:half], scaled[half:]
        btbt_d_slope, btbt_s_slope = scaled_grad[:half], scaled_grad[half:]
        # Junction biases are (d - b) and (s - b): frame partial tuples.
        btbt_d_grad = (0.0, btbt_d_slope, 0.0, -btbt_d_slope)
        btbt_s_grad = (0.0, 0.0, btbt_s_slope, -btbt_s_slope)

        i_drain = i_ch - igdo - igcd + i_btbt_d
        i_source = -i_ch - igso - igcs + i_btbt_s
        i_bulk = -igb - i_btbt_d - i_btbt_s
        i_gate = igso + igdo + igcs + igcd + igb

        shape = np.broadcast_shapes(
            np.shape(vg), np.shape(vd), np.shape(vs), np.shape(vb),
            (self.slots, 1),
        )
        jacobian = np.empty((4, 4) + shape)
        for x in range(4):
            so, do, cs, cd, gb = (gt_jacobian[row, x] for row in range(5))
            jacobian[0, x] = so + do + cs + cd + gb
            jacobian[1, x] = channel_grad[x] - do - cd + btbt_d_grad[x]
            jacobian[2, x] = -channel_grad[x] - so - cs + btbt_s_grad[x]
            jacobian[3, x] = -gb - btbt_d_grad[x] - btbt_s_grad[x]

        # Undo the source/drain ordering: swapped devices exchange their
        # drain/source rows and columns.  The polarity sign cancels (currents
        # and voltages mirror together), so no sign factor appears here.
        row_drain = np.where(swapped, jacobian[2], jacobian[1])
        row_source = np.where(swapped, jacobian[1], jacobian[2])
        jacobian[1] = row_drain
        jacobian[2] = row_source
        col_drain = np.where(swapped, jacobian[:, 2], jacobian[:, 1])
        col_source = np.where(swapped, jacobian[:, 1], jacobian[:, 2])
        jacobian[:, 1] = col_drain
        jacobian[:, 2] = col_source

        ig = sign * i_gate
        idr = sign * np.where(swapped, i_source, i_drain)
        isr = sign * np.where(swapped, i_drain, i_source)
        ib = sign * i_bulk
        return (ig, idr, isr, ib), jacobian

    def kcl_jacobian_flat(self, vg, vd, vs, vb):
        """Return the terminal currents and the *flattened* device Jacobian.

        The scatter-friendly export both Newton linear-algebra backends
        consume: ``(currents, flat)`` where ``flat`` has shape
        ``(16 * slots, columns)`` — the ``(4, 4, T, B)`` circuit-frame
        Jacobian of :meth:`kcl_jacobian` broadcast to the full grid and
        reshaped row-major, so entry ``(i * 4 + j) * slots + t`` is
        ``dI_i/dV_j`` of transistor slot ``t``.  The dense backend
        scatter-adds these values into ``(B, N, N)`` matrices, the sparse
        backend into the shared CSC data vector; the flat layout is the
        triplet-value array both index through their precomputed
        ``jac_source`` maps.
        """
        currents, jacobian = self.kcl_jacobian(vg, vd, vs, vb)
        grid = np.broadcast_shapes(
            np.shape(vg), np.shape(vd), np.shape(vs), np.shape(vb),
            (self.slots, 1),
        )
        flat = np.broadcast_to(jacobian, (4, 4) + grid).reshape(
            16 * self.slots, grid[1]
        )
        return currents, flat

    def component_currents(self, vg, vd, vs, vb) -> ComponentCurrents:
        """Return the leakage component breakdown for the whole grid.

        Mirrors the component attribution of
        :meth:`Mosfet.terminal_currents`: channel current counts as
        subthreshold leakage only for transistors below threshold, the gate
        component is the sum of tunneling magnitudes, BTBT sums both
        junctions.
        """
        shape = np.broadcast_shapes(
            np.shape(vg), np.shape(vd), np.shape(vs), np.shape(vb), (self.slots, 1)
        )
        (
            ig,
            _idr,
            _isr,
            _ib,
            i_ch,
            vgs,
            vth_eff,
            (igso, igdo, igcs, igcd, igb),
            i_btbt,
        ) = self._assemble(vg, vd, vs, vb)
        off = vgs < vth_eff
        i_sub = np.where(off, np.abs(i_ch), 0.0)
        i_gate = (
            np.abs(igso) + np.abs(igdo) + np.abs(igcs) + np.abs(igcd) + np.abs(igb)
        )
        return ComponentCurrents(
            ig=np.broadcast_to(ig, shape),
            i_subthreshold=np.broadcast_to(i_sub, shape),
            i_gate=np.broadcast_to(i_gate, shape),
            i_btbt=np.broadcast_to(i_btbt, shape),
        )
