"""Fig. 10 benchmark: leakage distributions with and without loading.

Default sample count is reduced from the paper's 10,000 SPICE runs to keep
the harness interactive; the trend (the loaded subthreshold/total
distributions sit visibly above the unloaded ones) is already stable at this
size.  EXPERIMENTS.md documents the configuration used.
"""

from benchmarks.conftest import run_once
from repro.experiments.fig10 import run_fig10_variation_histograms
from repro.variation.statistics import summarize

SAMPLES = 80


def test_fig10_variation_histograms(benchmark, d25s):
    result = run_once(
        benchmark,
        run_fig10_variation_histograms,
        d25s,
        samples=SAMPLES,
        rng=0,
    )
    print()
    print(result.to_table())

    loaded_sub = result.monte_carlo.values("subthreshold", loaded=True)
    unloaded_sub = result.monte_carlo.values("subthreshold", loaded=False)
    # Paper Fig. 10: loading shifts the subthreshold distribution upward.
    assert summarize(loaded_sub).mean > summarize(unloaded_sub).mean
    counts_loaded, counts_unloaded, edges = result.histograms("total", bins=15)
    assert counts_loaded.sum() == SAMPLES
    assert counts_unloaded.sum() == SAMPLES
    assert len(edges) == 16
