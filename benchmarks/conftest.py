"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one figure of the paper.  The harness favours
wall-clock-bounded default configurations (reduced sweeps, sample counts and
synthetic-circuit scale); EXPERIMENTS.md records the configuration behind
every number it quotes and how to run the full-size versions.
"""

from __future__ import annotations

import pytest

from repro.device.presets import make_technology
from repro.gates.characterize import GateLibrary


@pytest.fixture(scope="session")
def bulk25():
    """The 25 nm technology used by the device-level figures."""
    return make_technology("bulk-25nm")


@pytest.fixture(scope="session")
def d25s():
    """The subthreshold-dominated technology used by the circuit figures."""
    return make_technology("d25-s")


@pytest.fixture(scope="session")
def library_d25s(d25s):
    """A characterized library shared by the circuit-level benchmarks."""
    return GateLibrary(d25s)


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing.

    The experiments are deterministic and expensive, so a single round is
    both sufficient and necessary to keep the harness's total runtime sane.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
