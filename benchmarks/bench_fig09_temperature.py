"""Fig. 9 benchmark: overall loading effect versus temperature."""

from benchmarks.conftest import run_once
from repro.experiments.fig09 import run_fig9_temperature


def test_fig9_temperature(benchmark, bulk25):
    result = run_once(
        benchmark,
        run_fig9_temperature,
        bulk25,
        temperatures_c=(0.0, 25.0, 50.0, 75.0, 100.0, 125.0, 150.0),
    )
    print()
    print(result.to_table())

    subthreshold = result.component_series("subthreshold")
    total = result.component_series("total")
    # Paper Fig. 9: the subthreshold loading effect rises steeply with
    # temperature, while the total moves much less (components partially
    # cancel).
    assert subthreshold[-1] > subthreshold[0] > 0
    assert max(abs(t) for t in total) < max(subthreshold)
