"""Fig. 6 benchmark: LD_ALL surface over (input loading, output loading)."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig06 import run_fig6_ldall_surface


def test_fig6_ldall_surface(benchmark, bulk25):
    result = run_once(
        benchmark,
        run_fig6_ldall_surface,
        bulk25,
        grid=tuple(np.linspace(0.0, 3.0e-6, 4)),
    )
    print()
    print(result.to_table())

    surface0 = result.input0
    last = len(surface0.input_loading) - 1
    # Paper Fig. 6: LD_ALL grows along the input-loading axis, shrinks along
    # the output-loading axis, and is larger with input '0'.
    assert surface0.value(last, 0) > surface0.value(0, 0)
    assert surface0.value(0, last) < surface0.value(0, 0)
    assert surface0.value(last, 0) > result.input1.value(last, 0)
