"""Fig. 5 benchmark: inverter input/output loading effect per component."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig05 import run_fig5_inverter_loading


def test_fig5_inverter_loading(benchmark, bulk25):
    result = run_once(
        benchmark,
        run_fig5_inverter_loading,
        bulk25,
        loading_currents=tuple(np.linspace(0.0, 3.0e-6, 7)),
    )
    print()
    print(result.to_table())

    in0 = result.input_loading_in0.effects[-1]
    out0 = result.output_loading_in0.effects[-1]
    in1 = result.input_loading_in1.effects[-1]

    # Paper Fig. 5(a): input loading raises subthreshold (dominant response),
    # trims the gate component, leaves BTBT flat.
    assert in0.subthreshold > 0 and in0.subthreshold > abs(in0.gate)
    assert in0.gate < 0
    assert abs(in0.btbt) < 0.5
    # Paper Fig. 5(b): output loading reduces everything, BTBT the most.
    assert out0.subthreshold < 0 and out0.gate < 0 and out0.btbt < 0
    assert abs(out0.btbt) >= abs(out0.gate)
    # Paper: total input-loading effect larger with input '0' than input '1'.
    assert in0.total > in1.total
