"""Statistical-leakage benchmark: variance reduction, measured honestly.

Three recorded claims about the Fig. 11 std-shift statistic (the percent
change of the total-leakage standard deviation under loading, at
sigma_Vt(inter) = 50 mV):

* **Sampler alone is not enough.**  Scrambled-Sobol QMC against plain MC
  with the *same* empirical estimator buys only a modest factor — the
  statistic is a paired ratio of tail-weighted second moments, and its
  replicate error is dominated by the few extreme corners a sample set
  happens to contain, which equidistribution cannot smooth.  The measured
  factor is recorded, not asserted.
* **Sampler + estimator clears the bar.**  The shipped variance-reduced
  path — QMC draws scored by the moment-matched lognormal plug-in
  (:func:`~repro.variation.statistics.lognormal_shift_of_std`, a smooth
  function of light-tailed log-domain averages) — must reach
  ``>= 10x`` effective sample efficiency versus the MC + empirical
  baseline at equal budget, RMSE-measured against a large-sample
  empirical reference so the plug-in's model-bias floor is charged
  against it.
* **Moments beat sampling on wall clock.**  The moment-propagation fast
  path must agree with a large QMC oracle within recorded tolerance bars
  (mean <= 10 %, std <= 25 % — never relaxed) at a fraction of the solves.

Also asserts (never relaxed) that the scrambled-Sobol sampler is bitwise
identical between the serial path and the worker pool.  Records
``benchmarks/statistical_leakage.json`` (override with
``STATLEAK_BENCH_JSON``).  Environment knobs for smoke runs:
``STATLEAK_BENCH_SAMPLES``, ``STATLEAK_BENCH_REPLICATES``,
``STATLEAK_BENCH_REFERENCE``, ``STATLEAK_BENCH_ORACLE`` and
``STATLEAK_BENCH_MIN_EFFICIENCY`` (tiny budgets make the efficiency
measurement itself noisy; the agreement and bitwise bars are never
relaxed).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.engine.parallel import ParallelMonteCarlo
from repro.utils.rng import spawn_streams
from repro.variation.moments import propagate_loaded_inverter_moments
from repro.variation.montecarlo import run_loaded_inverter_monte_carlo
from repro.variation.spec import VariationSpec
from repro.variation.statistics import (
    equivalent_mc_samples,
    loading_shift_of_std,
    lognormal_shift_of_std,
)

SEED = 2005
REFERENCE_SEED = 31337
ORACLE_SEED = 424242
SIGMA_VTH_INTER_V = 0.050

SAMPLES = int(os.environ.get("STATLEAK_BENCH_SAMPLES", "256"))
REPLICATES = int(os.environ.get("STATLEAK_BENCH_REPLICATES", "24"))
REFERENCE_SAMPLES = int(os.environ.get("STATLEAK_BENCH_REFERENCE", "16384"))
ORACLE_SAMPLES = int(os.environ.get("STATLEAK_BENCH_ORACLE", "4096"))

#: Acceptance floor on the variance-reduced path (QMC + lognormal plug-in
#: vs MC + empirical, RMSE at equal budget).  Smoke runs may relax it —
#: at tiny replicate counts the efficiency *measurement* is noisy — but
#: the moments-agreement and bitwise bars below are never relaxed.
MIN_EFFICIENCY = float(os.environ.get("STATLEAK_BENCH_MIN_EFFICIENCY", "10.0"))

#: Moments-vs-oracle agreement bars, never relaxed.
MEAN_ERROR_BAR = 0.10
STD_ERROR_BAR = 0.25


def _json_path() -> Path:
    override = os.environ.get("STATLEAK_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "statistical_leakage.json"


def _totals(run):
    return run.values("total", loaded=True), run.values("total", loaded=False)


def _rmse(estimates, truth: float) -> float:
    estimates = np.asarray(estimates, dtype=float)
    return float(np.sqrt(np.mean((estimates - truth) ** 2)))


def _samples_bitwise_equal(result_a, result_b) -> bool:
    if result_a.sample_count != result_b.sample_count:
        return False
    for a, b in zip(result_a.samples, result_b.samples):
        if a.with_loading.as_dict() != b.with_loading.as_dict():
            return False
        if a.without_loading.as_dict() != b.without_loading.as_dict():
            return False
    return True


def _log_std(block: np.ndarray, axis: int) -> np.ndarray:
    return np.std(np.log(block), axis=axis, ddof=1)


def test_statistical_leakage_variance_reduction(benchmark, d25s):
    spec = VariationSpec().with_vth_inter_sigma(SIGMA_VTH_INTER_V)

    def measure():
        timings: dict[str, float] = {}

        # -- large-sample empirical reference (the "truth" every RMSE is
        # charged against; QMC so the reference itself is as tight as the
        # budget allows).
        start = time.perf_counter()
        reference = run_loaded_inverter_monte_carlo(
            d25s,
            spec=spec,
            samples=REFERENCE_SAMPLES,
            rng=REFERENCE_SEED,
            sampler="qmc",
        )
        timings["reference"] = time.perf_counter() - start
        ref_loaded, ref_unloaded = _totals(reference)
        truth = loading_shift_of_std(ref_loaded, ref_unloaded)
        plugin_truth = lognormal_shift_of_std(ref_loaded, ref_unloaded)

        # -- equal-budget replicates, both samplers, both estimators.
        shifts: dict[tuple[str, str], list[float]] = {}
        pooled_qmc: list[np.ndarray] = []
        start = time.perf_counter()
        for sampler in ("mc", "qmc"):
            for stream in spawn_streams(SEED, REPLICATES):
                run = run_loaded_inverter_monte_carlo(
                    d25s,
                    spec=spec,
                    samples=SAMPLES,
                    rng=stream,
                    sampler=sampler,
                )
                loaded, unloaded = _totals(run)
                shifts.setdefault((sampler, "empirical"), []).append(
                    loading_shift_of_std(loaded, unloaded)
                )
                shifts.setdefault((sampler, "lognormal"), []).append(
                    lognormal_shift_of_std(loaded, unloaded)
                )
                if sampler == "qmc":
                    pooled_qmc.append(loaded)
        timings["replicates"] = time.perf_counter() - start

        # The honest side metric: how many plain-MC samples the pooled
        # QMC population is worth for the (smooth) log-domain std.
        equivalent = equivalent_mc_samples(
            np.concatenate(pooled_qmc),
            np.array([_log_std(block, axis=0) for block in pooled_qmc]),
            statistic=_log_std,
            rng=0,
        )

        # -- moment propagation vs its Monte-Carlo oracle (default spec:
        # the pairwise-interaction probes stay on positive leakage there).
        start = time.perf_counter()
        oracle = run_loaded_inverter_monte_carlo(
            d25s, samples=ORACLE_SAMPLES, rng=ORACLE_SEED, sampler="qmc"
        )
        timings["oracle"] = time.perf_counter() - start
        start = time.perf_counter()
        moments = propagate_loaded_inverter_moments(d25s)
        timings["moments"] = time.perf_counter() - start

        # -- scrambled-Sobol serial vs pool, bitwise.
        start = time.perf_counter()
        serial = run_loaded_inverter_monte_carlo(
            d25s, spec=spec, samples=32, rng=SEED, sampler="qmc"
        )
        pooled = ParallelMonteCarlo(
            d25s, spec=spec, max_workers=2, sampler="qmc"
        ).run(32, rng=SEED)
        timings["bitwise"] = time.perf_counter() - start
        bitwise = _samples_bitwise_equal(serial, pooled)

        return truth, plugin_truth, shifts, equivalent, oracle, moments, bitwise, timings

    truth, plugin_truth, shifts, equivalent, oracle, moments, bitwise, timings = (
        run_once(benchmark, measure)
    )

    rmse = {
        f"rmse_{sampler}_{estimator}": _rmse(values, truth)
        for (sampler, estimator), values in shifts.items()
    }
    efficiency_sampler = (
        rmse["rmse_mc_empirical"] / rmse["rmse_qmc_empirical"]
    ) ** 2
    efficiency_reduced = (
        rmse["rmse_mc_empirical"] / rmse["rmse_qmc_lognormal"]
    ) ** 2

    moment_errors = {}
    for loaded in (True, False):
        key = "loaded" if loaded else "unloaded"
        values = oracle.values("total", loaded=loaded)
        estimate = moments.estimate("total", loaded=loaded)
        moment_errors[f"{key}_mean_error"] = abs(
            estimate.mean / float(values.mean()) - 1.0
        )
        moment_errors[f"{key}_std_error"] = abs(
            estimate.std / float(values.std(ddof=1)) - 1.0
        )
    moments_speedup = (
        timings["oracle"] / timings["moments"] if timings["moments"] > 0 else float("nan")
    )

    record = {
        "seed": SEED,
        "sigma_vth_inter_v": SIGMA_VTH_INTER_V,
        "samples_per_replicate": SAMPLES,
        "replicates": REPLICATES,
        "reference_samples": REFERENCE_SAMPLES,
        "min_efficiency_bar": MIN_EFFICIENCY,
        "reference": {
            "std_shift_percent": truth,
            "lognormal_std_shift_percent": plugin_truth,
            "lognormal_bias_percent": plugin_truth - truth,
            "seconds": timings["reference"],
        },
        "std_shift": {
            **rmse,
            "efficiency_qmc_empirical": efficiency_sampler,
            "efficiency_variance_reduced": efficiency_reduced,
        },
        "equivalent_mc_samples_log_std": equivalent,
        "moments": {
            "oracle_samples": ORACLE_SAMPLES,
            "method": moments.method,
            "solve_count": moments.solve_count,
            "interaction_pairs": moments.interaction_pairs,
            "seconds": timings["moments"],
            "speedup_vs_oracle": moments_speedup,
            "mean_error_bar": MEAN_ERROR_BAR,
            "std_error_bar": STD_ERROR_BAR,
            **moment_errors,
        },
        "reproducibility": {"qmc_pool_bitwise": bitwise},
    }
    path = _json_path()
    path.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(
        f"std-shift RMSE at {SAMPLES}x{REPLICATES}: "
        f"mc+empirical {rmse['rmse_mc_empirical']:.2f} -> "
        f"qmc+empirical {rmse['rmse_qmc_empirical']:.2f} "
        f"({efficiency_sampler:.1f}x), qmc+lognormal "
        f"{rmse['rmse_qmc_lognormal']:.2f} ({efficiency_reduced:.1f}x); "
        f"moments {moments.solve_count} solves vs {ORACLE_SAMPLES}-sample "
        f"oracle: {moments_speedup:.0f}x faster, total std within "
        f"{100 * max(moment_errors['loaded_std_error'], moment_errors['unloaded_std_error']):.0f}% "
        f"({path})"
    )

    # Bitwise and agreement bars — never relaxed.
    assert bitwise, "scrambled-Sobol pool run differs from the serial path"
    for key, error in moment_errors.items():
        bar = MEAN_ERROR_BAR if "mean" in key else STD_ERROR_BAR
        assert error <= bar, (
            f"moment propagation disagrees with the oracle: {key} "
            f"{error:.3f} > {bar}"
        )
    # The variance-reduced path must be worth the recorded factor.
    assert efficiency_reduced >= MIN_EFFICIENCY, (
        f"variance-reduced efficiency {efficiency_reduced:.1f}x below the "
        f"{MIN_EFFICIENCY}x bar"
    )
