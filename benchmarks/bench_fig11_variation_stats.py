"""Fig. 11 benchmark: loading-induced shift of leakage mean and std vs. sigma-Vt."""

from benchmarks.conftest import run_once
from repro.experiments.fig11 import run_fig11_variation_statistics

SAMPLES = 60


def test_fig11_variation_statistics(benchmark, d25s):
    result = run_once(
        benchmark,
        run_fig11_variation_statistics,
        d25s,
        sigma_values_v=(0.030, 0.040, 0.050),
        samples=SAMPLES,
        rng=0,
    )
    print()
    print(result.to_table())

    mean_shifts = result.mean_shifts()
    std_shifts = result.std_shifts()
    # Paper Fig. 11: considering loading raises both the mean and (more
    # strongly) the spread of the total leakage, and the std effect grows
    # with the inter-die threshold variation.
    assert all(shift > 0 for shift in mean_shifts)
    assert std_shifts[-1] > 0
    assert max(std_shifts) >= max(mean_shifts)
