"""Batched-DC-solver benchmark: characterization and Monte-Carlo vs scalar.

The tentpole claim of the batched SPICE layer is that the two DC-solve-bound
workloads of this library — characterizing a full gate library (pins x
vectors x injection grids of structurally identical cell solves) and the
Fig. 10/11 Monte-Carlo study (hundreds of identical-topology inverter-pair
solves) — collapse into a handful of vectorized batched solves while
reproducing the scalar :class:`~repro.spice.solver.DcSolver` oracle's leakage
numbers to well below 1e-9 relative error.

Both engines run with tightened solver tolerances so that root-finder
termination noise (which would otherwise dominate at the default 5 uV /
1e-8 V settings) sits far below the agreement bar; the tolerances are
recorded in the JSON alongside the timings.

The numbers are recorded as JSON (``benchmarks/batched_solver.json`` by
default, override with ``BATCHED_BENCH_JSON``) in the same spirit as
``bench_engine_batched.py``, so CI can archive the speedup trajectory.
Environment knobs for smoke runs: ``BATCHED_BENCH_GATES`` (comma-separated
gate-type names; default: the full library) and ``BATCHED_BENCH_MC_SAMPLES``
(default 200).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.device.presets import make_technology
from repro.gates.characterize import CharacterizationOptions, GateLibrary
from repro.gates.library import GateType
from repro.spice.solver import SolverOptions
from repro.variation.montecarlo import run_loaded_inverter_monte_carlo

SEED = 2005
MC_SAMPLES = int(os.environ.get("BATCHED_BENCH_MC_SAMPLES", "200"))

#: Acceptance thresholds: each workload must run at least 5x faster batched
#: while agreeing with the scalar oracle to 1e-9 relative leakage error.
#: The agreement bar is deterministic; the speedup bar is wall-clock and can
#: be lowered for smoke runs on noisy shared runners via
#: ``BATCHED_BENCH_MIN_SPEEDUP`` (the full benchmark keeps the 5x default).
MIN_SPEEDUP = float(os.environ.get("BATCHED_BENCH_MIN_SPEEDUP", "5.0"))
MAX_RELATIVE_ERROR = 1.0e-9

#: Tight solver settings shared by both engines (see module docstring).
TIGHT_SOLVER = SolverOptions(voltage_tol=1e-11, xtol=1e-14, max_sweeps=250)


def _gate_types() -> list[GateType]:
    names = os.environ.get("BATCHED_BENCH_GATES")
    if not names:
        return list(GateType)
    return [GateType.from_name(name.strip()) for name in names.split(",")]


def _json_path() -> Path:
    override = os.environ.get("BATCHED_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "batched_solver.json"


def _relative(observed: float, expected: float) -> float:
    return abs(observed - expected) / max(abs(expected), 1e-30)


def _characterization_error(batched: GateLibrary, scalar: GateLibrary) -> float:
    """Max relative leakage error across every record, curve and component."""
    worst = 0.0
    for record in batched.cached_records():
        oracle = scalar.characterization(record.gate_type_name, record.vector)
        for name in ("subthreshold", "gate", "btbt"):
            worst = max(
                worst,
                _relative(
                    record.nominal.component(name), oracle.nominal.component(name)
                ),
            )
        for pin, curve in record.responses.items():
            oracle_curve = oracle.responses[pin]
            for name in ("subthreshold", "gate", "btbt"):
                expected = getattr(oracle_curve, name)
                errors = np.abs(getattr(curve, name) - expected) / np.maximum(
                    np.abs(expected), 1e-30
                )
                worst = max(worst, float(errors.max()))
    return worst


def _run_characterization(technology, gate_types):
    batched_library = GateLibrary(
        technology,
        options=CharacterizationOptions(engine="batched", solver=TIGHT_SOLVER),
    )
    start = time.perf_counter()
    records = batched_library.precharacterize(gate_types)
    batched_seconds = time.perf_counter() - start

    scalar_library = GateLibrary(
        technology,
        options=CharacterizationOptions(engine="scalar", solver=TIGHT_SOLVER),
    )
    start = time.perf_counter()
    scalar_library.precharacterize(gate_types)
    scalar_seconds = time.perf_counter() - start
    return batched_library, scalar_library, records, batched_seconds, scalar_seconds


def _run_monte_carlo(technology):
    start = time.perf_counter()
    batched = run_loaded_inverter_monte_carlo(
        technology,
        samples=MC_SAMPLES,
        rng=SEED,
        engine="batched",
        solver_options=TIGHT_SOLVER,
    )
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scalar = run_loaded_inverter_monte_carlo(
        technology,
        samples=MC_SAMPLES,
        rng=SEED,
        engine="scalar",
        solver_options=TIGHT_SOLVER,
    )
    scalar_seconds = time.perf_counter() - start

    worst = 0.0
    for component in ("subthreshold", "gate", "btbt"):
        for loaded in (True, False):
            observed = batched.values(component, loaded=loaded)
            expected = scalar.values(component, loaded=loaded)
            worst = max(
                worst, float(np.max(np.abs(observed - expected) / np.abs(expected)))
            )
    return batched_seconds, scalar_seconds, worst


def _run_workloads(technology, gate_types):
    characterization = _run_characterization(technology, gate_types)
    monte_carlo = _run_monte_carlo(technology)
    return characterization, monte_carlo


def test_batched_solver_speedup(benchmark, d25s):
    gate_types = _gate_types()
    (
        (batched_library, scalar_library, records, char_batched_s, char_scalar_s),
        (mc_batched_s, mc_scalar_s, mc_error),
    ) = run_once(benchmark, _run_workloads, d25s, gate_types)

    char_error = _characterization_error(batched_library, scalar_library)
    char_speedup = char_scalar_s / char_batched_s if char_batched_s > 0 else float("nan")
    mc_speedup = mc_scalar_s / mc_batched_s if mc_batched_s > 0 else float("nan")

    record = {
        "seed": SEED,
        "solver_options": {
            "voltage_tol": TIGHT_SOLVER.voltage_tol,
            "xtol": TIGHT_SOLVER.xtol,
            "max_sweeps": TIGHT_SOLVER.max_sweeps,
            "method": TIGHT_SOLVER.method,
        },
        "characterization": {
            "gate_types": [gate_type.value for gate_type in gate_types],
            "records": records,
            "scalar_seconds": char_scalar_s,
            "batched_seconds": char_batched_s,
            "speedup": char_speedup,
            "max_relative_error": char_error,
            # Convergence cost, not just wall clock: per-solve iteration
            # counts of each engine (sweeps or Newton iterations).
            "batched_solver_stats": batched_library.characterizer.solve_stats,
            "scalar_solver_stats": scalar_library.characterizer.solve_stats,
        },
        "monte_carlo": {
            "samples": MC_SAMPLES,
            "scalar_seconds": mc_scalar_s,
            "batched_seconds": mc_batched_s,
            "speedup": mc_speedup,
            "max_relative_error": mc_error,
            "solver_method": TIGHT_SOLVER.method,
        },
    }
    path = _json_path()
    path.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(
        f"characterization ({records} records): scalar {char_scalar_s:.2f}s vs "
        f"batched {char_batched_s:.2f}s -> {char_speedup:.1f}x, "
        f"max rel err {char_error:.3e}"
    )
    print(
        f"monte carlo ({MC_SAMPLES} samples): scalar {mc_scalar_s:.2f}s vs "
        f"batched {mc_batched_s:.2f}s -> {mc_speedup:.1f}x, "
        f"max rel err {mc_error:.3e} ({path})"
    )

    assert char_error <= MAX_RELATIVE_ERROR
    assert mc_error <= MAX_RELATIVE_ERROR
    assert char_speedup >= MIN_SPEEDUP
    assert mc_speedup >= MIN_SPEEDUP
