"""Vector-search benchmark: optimizers vs. best-of-random at equal budget.

The claim of the :mod:`repro.optimize` subsystem is threefold, and this
benchmark asserts and records all three parts in
``benchmarks/vector_search.json`` (override with ``VECTOR_SEARCH_JSON``):

1. **oracle parity** — on circuits small enough for the exhaustive oracle
   (<= 12 primary inputs here) both the greedy hill climber and the
   genetic search return the true minimum-leakage vector;
2. **search quality at scale** — on the full-size study circuits (s838,
   mult88, alu88) both strategies find a vector at least as good as — and
   on s838 strictly better than — the best of N uniform random vectors,
   where N is the *larger* of the two optimizers' own evaluation ledgers
   (the random baseline never sees fewer candidates than either
   optimizer);
3. **reproducibility** — re-running the s838 searches split over islands
   (and a worker pool) reproduces the serial results bitwise.

It also records the feasibility speedup: the scalar per-vector estimator
cost (probed on ``VECTOR_SEARCH_PROBE`` vectors) times the total number of
candidates searched, over the actual batched search wall-clock — how much
longer the identical search would have taken vector by vector.

Environment knobs for smoke runs: ``VECTOR_SEARCH_CIRCUITS``,
``VECTOR_SEARCH_SCALE`` (synthetic circuits only), ``VECTOR_SEARCH_RESTARTS``,
``VECTOR_SEARCH_POPULATION``, ``VECTOR_SEARCH_GENERATIONS``,
``VECTOR_SEARCH_MIN_SPEEDUP``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.circuit.generators import (
    alu,
    array_multiplier,
    iscas_like,
    nand_tree,
    random_logic,
)
from repro.core.estimator import LoadingAwareEstimator
from repro.engine import compile_circuit
from repro.optimize import (
    GeneticOptions,
    GreedyOptions,
    LeakageObjective,
    exhaustive_minimize,
    genetic_minimize,
    greedy_minimize,
)
from repro.utils.rng import spawn_streams

CIRCUITS = [
    name.strip()
    for name in os.environ.get(
        "VECTOR_SEARCH_CIRCUITS", "s838,mult88,alu88"
    ).split(",")
    if name.strip()
]
SCALE = float(os.environ.get("VECTOR_SEARCH_SCALE", "1.0"))
SEED = 2005
RESTARTS = int(os.environ.get("VECTOR_SEARCH_RESTARTS", "8"))
POPULATION = int(os.environ.get("VECTOR_SEARCH_POPULATION", "48"))
GENERATIONS = int(os.environ.get("VECTOR_SEARCH_GENERATIONS", "60"))
PROBE_VECTORS = int(os.environ.get("VECTOR_SEARCH_PROBE", "10"))

#: The searched-per-second advantage over running the identical search
#: through the scalar estimator must clear this bar (conservative for CI).
MIN_SPEEDUP = float(os.environ.get("VECTOR_SEARCH_MIN_SPEEDUP", "5.0"))


def _json_path() -> Path:
    override = os.environ.get("VECTOR_SEARCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "vector_search.json"


def _build_circuit(name: str):
    if name == "mult88":
        return array_multiplier(8)
    if name == "alu88":
        return alu(8)
    return iscas_like(name, scale=SCALE)


def _search_one(compiled, greedy_rng, genetic_rng, random_rng):
    """Run both strategies plus the equal-budget random baselines, timed.

    The random draws are i.i.d. in order, so the best of the *first K* of
    one ``max_budget``-sized sample is exactly a best-of-random-K baseline:
    one batched evaluation pass yields the equal-budget baseline of every
    strategy via prefix minima.
    """
    start = time.perf_counter()
    greedy = greedy_minimize(
        compiled, options=GreedyOptions(restarts=RESTARTS), rng=greedy_rng
    )
    greedy_seconds = time.perf_counter() - start

    start = time.perf_counter()
    genetic = genetic_minimize(
        compiled,
        options=GeneticOptions(population=POPULATION, generations=GENERATIONS),
        rng=genetic_rng,
    )
    genetic_seconds = time.perf_counter() - start

    budget = max(greedy.evaluations, genetic.evaluations)
    objective = LeakageObjective(compiled)
    candidates = random_rng.integers(
        0, 2, size=(budget, objective.n_inputs), dtype=np.uint8
    )
    start = time.perf_counter()
    totals = objective.totals(candidates)
    random_seconds = time.perf_counter() - start
    prefix_min = np.minimum.accumulate(totals)
    random_best = {
        "greedy": float(prefix_min[greedy.evaluations - 1]),
        "genetic": float(prefix_min[genetic.evaluations - 1]),
        "max": float(prefix_min[-1]),
    }
    return (
        greedy,
        greedy_seconds,
        genetic,
        genetic_seconds,
        budget,
        random_best,
        random_seconds,
    )


def test_vector_search(benchmark, d25s, library_d25s):
    estimator = LoadingAwareEstimator(library_d25s)

    # 1. oracle parity on small circuits ----------------------------------- #
    # The parity bar always runs at the full default restart/population
    # sizes: the smoke knobs shrink the *scale* section, but "finds the true
    # minimum on small circuits" is an accuracy claim whose search effort is
    # part of the contract (4 restarts demonstrably get trapped), and small
    # circuits make full-size searches nearly free anyway.
    parity = {"circuits": [], "all_match": True}
    for small in (nand_tree(3), random_logic("vs_small", 10, 30, rng=7)):
        compiled = compile_circuit(small, library_d25s)
        oracle = exhaustive_minimize(compiled)
        greedy = greedy_minimize(
            compiled, options=GreedyOptions(restarts=8), rng=SEED
        )
        genetic = genetic_minimize(compiled, rng=SEED)
        matches = (
            greedy.best_total == oracle.best_total
            and genetic.best_total == oracle.best_total
        )
        parity["circuits"].append(
            {
                "circuit": small.name,
                "inputs": len(small.primary_inputs),
                "exhaustive_evaluations": oracle.evaluations,
                "matches": matches,
            }
        )
        parity["all_match"] = parity["all_match"] and matches
        assert matches, f"{small.name}: heuristics missed the exhaustive minimum"

    # 2. search at scale vs. best-of-random -------------------------------- #
    circuits = {}
    reproducibility = {}
    for index, name in enumerate(CIRCUITS):
        circuit = _build_circuit(name)
        start = time.perf_counter()
        compiled = compile_circuit(circuit, library_d25s)
        compile_seconds = time.perf_counter() - start

        greedy_rng, genetic_rng, random_rng, probe_rng = spawn_streams(
            SEED + index, 4
        )
        (
            greedy,
            greedy_seconds,
            genetic,
            genetic_seconds,
            budget,
            random_best,
            random_seconds,
        ) = run_once(
            benchmark if index == 0 else _passthrough,
            _search_one,
            compiled,
            greedy_rng,
            genetic_rng,
            random_rng,
        )

        # Scalar feasibility probe: what the same candidate count would
        # have cost through the per-vector estimator.
        probe_bits = probe_rng.integers(
            0, 2, size=(PROBE_VECTORS, len(circuit.primary_inputs)), dtype=np.uint8
        )
        objective = LeakageObjective(compiled)
        start = time.perf_counter()
        for row in probe_bits:
            estimator.estimate(circuit, objective.assignment(row))
        scalar_per_vector = (time.perf_counter() - start) / PROBE_VECTORS
        searched = greedy.evaluations + genetic.evaluations + budget
        batched_seconds = greedy_seconds + genetic_seconds + random_seconds
        speedup = (
            scalar_per_vector * searched / batched_seconds
            if batched_seconds > 0
            else float("nan")
        )

        improvement = {
            "greedy": 100.0
            * (random_best["greedy"] - greedy.best_total)
            / random_best["greedy"],
            "genetic": 100.0
            * (random_best["genetic"] - genetic.best_total)
            / random_best["genetic"],
        }
        circuits[name] = {
            "gates": circuit.gate_count,
            "inputs": len(circuit.primary_inputs),
            "compile_seconds": compile_seconds,
            "scalar_seconds_per_vector": scalar_per_vector,
            "speedup_vs_scalar": speedup,
            "greedy": {
                "best_total": greedy.best_total,
                "evaluations": greedy.evaluations,
                "rounds": greedy.islands[0].rounds,
                "converged": greedy.converged,
                "seconds": greedy_seconds,
            },
            "genetic": {
                "best_total": genetic.best_total,
                "evaluations": genetic.evaluations,
                "generations": genetic.islands[0].rounds,
                "converged": genetic.converged,
                "seconds": genetic_seconds,
            },
            "random": {
                "evaluations": budget,
                "best_total": random_best["max"],
                "best_at_greedy_budget": random_best["greedy"],
                "best_at_genetic_budget": random_best["genetic"],
                "seconds": random_seconds,
            },
            "improvement_percent": improvement,
            "beats_random": {
                "greedy": greedy.best_total < random_best["greedy"],
                "genetic": genetic.best_total < random_best["genetic"],
            },
        }

        assert greedy.best_total <= random_best["greedy"], (
            f"{name}: greedy lost to equal-budget random"
        )
        assert genetic.best_total <= random_best["genetic"], (
            f"{name}: genetic lost to equal-budget random"
        )
        if name == "s838" and SCALE >= 1.0:
            # Full-scale acceptance bar: both strategies strictly beat the
            # equal-budget random baseline.  (Smoke runs at reduced scale
            # keep the non-strict check above; the committed
            # vector_search.json records the full-scale strict result.)
            assert greedy.best_total < random_best["greedy"]
            assert genetic.best_total < random_best["genetic"]
        assert speedup >= MIN_SPEEDUP, (
            f"{name}: batched search only {speedup:.1f}x over the scalar "
            f"estimator (bar {MIN_SPEEDUP}x)"
        )

        # 3. bitwise serial-vs-island reproducibility (first circuit) ------- #
        if index == 0:
            # Each comparison run gets its own freshly-derived generator:
            # spawning streams *advances* a Generator's spawn key, so
            # reusing one object across runs would silently hand the second
            # run different streams.
            greedy_rng2, genetic_rng2, _, _ = spawn_streams(SEED + index, 4)
            _, genetic_rng3, _, _ = spawn_streams(SEED + index, 4)
            split = greedy_minimize(
                compiled,
                options=GreedyOptions(restarts=RESTARTS),
                rng=greedy_rng2,
                islands=4,
            )
            greedy_bitwise = (
                split.best_total == greedy.best_total
                and bool(np.array_equal(split.best_bits, greedy.best_bits))
                and split.evaluations == greedy.evaluations
            )
            pool_options = GeneticOptions(
                population=max(8, POPULATION // 4), generations=8
            )
            serial = genetic_minimize(
                compiled, options=pool_options, rng=genetic_rng2, islands=2,
                max_workers=1,
            )
            pooled = genetic_minimize(
                compiled, options=pool_options, rng=genetic_rng3, islands=2,
                max_workers=2,
            )
            genetic_bitwise = (
                serial.best_total == pooled.best_total
                and bool(np.array_equal(serial.best_bits, pooled.best_bits))
                and all(
                    np.array_equal(a.trajectory, b.trajectory)
                    for a, b in zip(serial.islands, pooled.islands)
                )
            )
            reproducibility = {
                "circuit": name,
                "greedy_island_bitwise": greedy_bitwise,
                "genetic_pool_bitwise": genetic_bitwise,
            }
            assert greedy_bitwise, "island split changed the greedy result"
            assert genetic_bitwise, "worker pool changed the genetic result"

    record = {
        "seed": SEED,
        "scale": SCALE,
        "engine": "batched",
        "solver_method": "lut-campaign",
        "min_speedup": MIN_SPEEDUP,
        "greedy_options": {"restarts": RESTARTS},
        "genetic_options": {"population": POPULATION, "generations": GENERATIONS},
        "exhaustive_parity": parity,
        "reproducibility": reproducibility,
        "circuits": circuits,
    }
    path = _json_path()
    path.write_text(json.dumps(record, indent=2) + "\n")

    print()
    for name, entry in circuits.items():
        print(
            f"{name}: greedy {entry['improvement_percent']['greedy']:.2f}% / "
            f"genetic {entry['improvement_percent']['genetic']:.2f}% below "
            f"best-of-{entry['random']['evaluations']} random, "
            f"{entry['speedup_vs_scalar']:.0f}x vs scalar search ({path})"
        )


class _Passthrough:
    """Stand-in for the pytest-benchmark fixture on non-primary circuits."""

    @staticmethod
    def pedantic(function, args=(), kwargs=None, rounds=1, iterations=1):
        return function(*args, **(kwargs or {}))


_passthrough = _Passthrough()
