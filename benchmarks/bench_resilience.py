"""Resilience benchmark: the price of surviving faults, and the proof it works.

The resilience layer's claim is also operational: a supervised Monte-Carlo
run that loses a worker mid-flight (``kill-worker``) and hits a transient
chunk failure (``raise``) must finish **bitwise identical** to the serial
oracle, at a bounded recovery overhead; and a run resumed from an on-disk
checkpoint must skip every completed chunk and still land on the same
bytes.  Three measured sides, same task and seed throughout:

* **fault-free**: the supervised pool with no injector — the baseline the
  overhead ratio is charged against;
* **faulted**: deterministic injector kills the worker hosting one chunk
  and poisons another chunk's first attempt — the pool restarts, the
  retries re-run from the original spawned seed streams;
* **resume**: a checkpointed run, then a second run with ``resume=True``
  that must re-execute **zero** chunks.

Records ``benchmarks/resilience.json`` (override with
``RESILIENCE_BENCH_JSON``) for CI to archive.  Environment knobs for smoke
runs: ``RESILIENCE_BENCH_SAMPLES``, ``RESILIENCE_BENCH_WORKERS`` and
``RESILIENCE_BENCH_MAX_OVERHEAD`` (smoke machines are noisy; the bitwise
and ledger bars are never relaxed).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.engine.parallel import ParallelMonteCarlo
from repro.resilience import (
    FaultInjector,
    FaultSpec,
    ResilienceOptions,
    RetryPolicy,
)
from repro.variation.montecarlo import run_loaded_inverter_monte_carlo

SAMPLES = int(os.environ.get("RESILIENCE_BENCH_SAMPLES", "32"))
WORKERS = int(os.environ.get("RESILIENCE_BENCH_WORKERS", "2"))
SEED = 2005

#: Acceptance ceiling: recovering from the injected faults (one dead
#: worker, one poisoned chunk) must cost at most this factor over the
#: fault-free supervised run.  Smoke runs may raise it (pool restarts are
#: a fixed cost that looms larger at tiny sample counts); the bitwise and
#: ledger bars below are never relaxed.
MAX_OVERHEAD = float(os.environ.get("RESILIENCE_BENCH_MAX_OVERHEAD", "2.0"))

#: Fast backoff so the measured overhead is recovery work, not sleeping.
POLICY = RetryPolicy(backoff_base_s=0.01, backoff_max_s=0.1)


def _json_path() -> Path:
    override = os.environ.get("RESILIENCE_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "resilience.json"


def _samples_bitwise_equal(result_a, result_b) -> bool:
    if result_a.sample_count != result_b.sample_count:
        return False
    for a, b in zip(result_a.samples, result_b.samples):
        if a.with_loading.as_dict() != b.with_loading.as_dict():
            return False
        if a.without_loading.as_dict() != b.without_loading.as_dict():
            return False
    return True


def _timed_run(technology, resilience):
    driver = ParallelMonteCarlo(
        technology, max_workers=WORKERS, resilience=resilience
    )
    start = time.perf_counter()
    result = driver.run(SAMPLES, rng=SEED)
    return result, time.perf_counter() - start


def test_resilience_recovery_overhead(benchmark, bulk25, tmp_path):
    # The oracle is the plain serial path: no pool, no supervision.
    oracle = run_loaded_inverter_monte_carlo(bulk25, samples=SAMPLES, rng=SEED)

    # The batched Monte-Carlo path forms one chunk per worker, so chunks
    # 0 and 1 always exist at the minimum WORKERS=2.
    injector = FaultInjector(
        seed=7,
        specs=(
            FaultSpec(kind="kill-worker", chunks=frozenset({0})),
            FaultSpec(kind="raise", chunks=frozenset({1})),
        ),
    )
    checkpoint_path = tmp_path / "bench.ckpt"

    def measure():
        fault_free = _timed_run(bulk25, ResilienceOptions(policy=POLICY))
        faulted = _timed_run(
            bulk25, ResilienceOptions(policy=POLICY, injector=injector)
        )
        checkpointed = _timed_run(
            bulk25,
            ResilienceOptions(
                policy=POLICY,
                checkpoint_path=checkpoint_path,
                keep_checkpoint=True,
            ),
        )
        resumed = _timed_run(
            bulk25,
            ResilienceOptions(
                policy=POLICY, checkpoint_path=checkpoint_path, resume=True
            ),
        )
        return fault_free, faulted, checkpointed, resumed

    (
        (clean_result, clean_seconds),
        (faulted_result, faulted_seconds),
        (checkpointed_result, checkpointed_seconds),
        (resumed_result, resumed_seconds),
    ) = run_once(benchmark, measure)

    clean_identical = _samples_bitwise_equal(clean_result, oracle)
    faulted_identical = _samples_bitwise_equal(faulted_result, oracle)
    resumed_identical = _samples_bitwise_equal(resumed_result, oracle)
    overhead = (
        faulted_seconds / clean_seconds if clean_seconds > 0 else float("nan")
    )

    faulted_ledger = faulted_result.metadata["resilience"]
    resumed_ledger = resumed_result.metadata["resilience"]
    record = {
        "seed": SEED,
        "samples": SAMPLES,
        "workers": WORKERS,
        "max_overhead_bar": MAX_OVERHEAD,
        "fault_free": {
            "seconds": clean_seconds,
            "bitwise_identical": clean_identical,
        },
        "faulted": {
            "seconds": faulted_seconds,
            "bitwise_identical": faulted_identical,
            "overhead_vs_fault_free": overhead,
            "retries": faulted_ledger["retries"],
            "retried_chunks": faulted_ledger["retried_chunks"],
            "pool_restarts": faulted_ledger["pool_restarts"],
            "gave_up": faulted_ledger["gave_up"],
        },
        "resume": {
            "checkpointed_seconds": checkpointed_seconds,
            "resumed_seconds": resumed_seconds,
            "bitwise_identical": resumed_identical,
            "resumed_chunks": resumed_ledger["resumed_chunks"],
            "reexecuted_attempts": resumed_ledger["attempts"],
            "checkpoint_publishes": checkpointed_result.metadata["resilience"][
                "checkpoint_publishes"
            ],
        },
    }
    path = _json_path()
    path.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(
        f"fault-free {clean_seconds:.2f}s vs faulted {faulted_seconds:.2f}s "
        f"-> {overhead:.2f}x overhead ({faulted_ledger['retries']} retries, "
        f"{faulted_ledger['pool_restarts']} pool restart(s)); resume "
        f"re-ran {resumed_ledger['attempts']} chunks ({path})"
    )

    # Bitwise bars — never relaxed.
    assert clean_identical, "supervised pool differs from serial oracle"
    assert faulted_identical, "faulted run did not recover bitwise"
    assert resumed_identical, "resumed run differs from serial oracle"
    # Ledger bars: the injected faults actually happened and were survived.
    assert faulted_ledger["pool_restarts"] >= 1
    assert 0 in faulted_ledger["retried_chunks"]
    assert 1 in faulted_ledger["retried_chunks"]
    assert faulted_ledger["gave_up"] == 0
    # Resume re-executed nothing.
    assert resumed_ledger["resumed_chunks"] == resumed_ledger["chunks"]
    assert resumed_ledger["attempts"] == 0
    assert overhead <= MAX_OVERHEAD
