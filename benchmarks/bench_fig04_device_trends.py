"""Fig. 4 benchmark: leakage components vs. halo doping, oxide thickness, temperature."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig04 import run_fig4_device_trends


def test_fig4a_halo_sweep(benchmark, bulk25):
    result = run_once(
        benchmark,
        run_fig4_device_trends,
        bulk25,
        halo_values_cm3=list(np.linspace(1.0e18, 8.0e18, 8)),
        tox_values_nm=[bulk25.nmos.tox_nm],
        temperatures_k=[300.0],
    )
    print()
    print(result.halo.to_table())
    # Paper Fig. 4(a): halo up -> Isub down, Ibtbt up, Igate flat.
    assert result.halo.subthreshold[-1] < result.halo.subthreshold[0]
    assert result.halo.btbt[-1] > result.halo.btbt[0]


def test_fig4b_tox_sweep(benchmark, bulk25):
    result = run_once(
        benchmark,
        run_fig4_device_trends,
        bulk25,
        halo_values_cm3=[bulk25.nmos.btbt.halo_cm3],
        tox_values_nm=list(np.linspace(0.8, 1.4, 7)),
        temperatures_k=[300.0],
    )
    print()
    print(result.tox.to_table())
    # Paper Fig. 4(b): tox up -> Igate down (strongly), Isub up, Ibtbt flat.
    assert result.tox.gate[-1] < result.tox.gate[0] / 10
    assert result.tox.subthreshold[-1] > result.tox.subthreshold[0]


def test_fig4c_temperature_sweep(benchmark, bulk25):
    result = run_once(
        benchmark,
        run_fig4_device_trends,
        bulk25,
        halo_values_cm3=[bulk25.nmos.btbt.halo_cm3],
        tox_values_nm=[bulk25.nmos.tox_nm],
        temperatures_k=list(np.linspace(300.0, 400.0, 11)),
    )
    print()
    print(result.temperature.to_table())
    series = result.temperature
    # Paper Fig. 4(c): subthreshold grows exponentially and overtakes the
    # (nearly flat) gate tunneling at elevated temperature.
    assert series.subthreshold[-1] / series.subthreshold[0] > 5
    assert series.gate[-1] / series.gate[0] < 1.5
    assert series.subthreshold[-1] > series.gate[-1]
