"""Batched-engine benchmark: whole-campaign evaluation vs. the scalar loop.

The tentpole claim of the campaign engine is that a full random-vector
campaign (the paper's Fig. 12 workload: 100 vectors on an ISCAS89-sized
circuit) collapses from one Python estimator walk per vector into a few
NumPy array passes, while reproducing the scalar
:class:`~repro.core.estimator.LoadingAwareEstimator` circuit totals to
rounding error.

This benchmark times both paths on the identical vector set, checks the
per-component agreement, and records the numbers as JSON
(``benchmarks/engine_batched.json`` by default, override with
``ENGINE_BENCH_JSON``) so CI can archive the speedup trend.  Environment
knobs for smoke runs: ``ENGINE_BENCH_SCALE`` (synthetic-circuit scale) and
``ENGINE_BENCH_VECTORS`` (campaign size).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.circuit.generators import iscas_like
from repro.circuit.logic import random_vectors
from repro.core.estimator import LoadingAwareEstimator
from repro.core.report import REPORT_COMPONENTS
from repro.core.vectors import run_vector_campaign
from repro.engine import compile_circuit

CIRCUIT = "s838"
SCALE = float(os.environ.get("ENGINE_BENCH_SCALE", "1.0"))
VECTORS = int(os.environ.get("ENGINE_BENCH_VECTORS", "100"))
SEED = 2005

#: Acceptance thresholds: the engine must reproduce the scalar totals to
#: 1e-12 relative error while running at least 10x faster end-to-end.
MAX_RELATIVE_ERROR = 1e-12
MIN_SPEEDUP = 10.0


def _json_path() -> Path:
    override = os.environ.get("ENGINE_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "engine_batched.json"


def _run_campaigns(estimator, circuit, vectors):
    """Time one batched campaign (warm compile cache) and the scalar loop.

    The compile is a one-time cost amortized across campaigns by the compile
    cache — the compile-once/run-many usage the engine targets — so it is
    timed separately by the test and excluded here.
    """
    start = time.perf_counter()
    batched = run_vector_campaign(
        estimator, circuit, vectors=vectors, engine="batched"
    )
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scalar = run_vector_campaign(estimator, circuit, vectors=vectors, engine="scalar")
    scalar_seconds = time.perf_counter() - start
    return batched, batched_seconds, scalar, scalar_seconds


def test_engine_batched_speedup(benchmark, d25s, library_d25s):
    circuit = iscas_like(CIRCUIT, scale=SCALE)
    estimator = LoadingAwareEstimator(library_d25s)
    vectors = list(random_vectors(circuit, VECTORS, rng=SEED))

    # The recorded compile_seconds is the first compile of this circuit:
    # flattening plus characterizing whatever (gate type, vector) pairs the
    # library has not yet solved — the one-time cost the compile cache
    # amortizes across campaigns.
    start = time.perf_counter()
    compile_circuit(circuit, library_d25s)
    compile_seconds = time.perf_counter() - start

    batched, batched_seconds, scalar, scalar_seconds = run_once(
        benchmark, _run_campaigns, estimator, circuit, vectors
    )

    errors = {}
    for component in REPORT_COMPONENTS:
        expected = scalar.totals(component)
        observed = batched.totals(component)
        errors[component] = float(
            np.max(np.abs(observed - expected) / np.abs(expected))
        )
    max_error = max(errors.values())
    speedup = scalar_seconds / batched_seconds if batched_seconds > 0 else float("nan")

    record = {
        "circuit": CIRCUIT,
        "scale": SCALE,
        "gates": circuit.gate_count,
        "vectors": len(vectors),
        "seed": SEED,
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "compile_seconds": compile_seconds,
        "engine_runtime_s": batched.runtime_s(),
        "speedup": speedup,
        "max_relative_error": max_error,
        "relative_error_per_component": errors,
    }
    path = _json_path()
    path.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(
        f"batched {batched_seconds:.4f}s vs scalar {scalar_seconds:.4f}s "
        f"-> {speedup:.1f}x, max rel err {max_error:.3e} ({path})"
    )

    assert max_error <= MAX_RELATIVE_ERROR
    assert speedup >= MIN_SPEEDUP
