"""Fig. 7 benchmark: NAND2 loading effect per input vector."""

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.fig07 import run_fig7_nand_vectors


def test_fig7_nand_vectors(benchmark, bulk25):
    result = run_once(
        benchmark,
        run_fig7_nand_vectors,
        bulk25,
        loading_currents=tuple(np.linspace(0.0, 3.0e-6, 5)),
    )
    print()
    print(result.to_table())

    # Paper Fig. 7: input loading matters most when at least one input is '0';
    # stacking mutes '00' relative to '01'/'10'; output loading is strongest
    # when the output is '0' (vector '11').
    assert result.panel("01").input_a[-1].total > result.panel("11").input_a[-1].total
    assert result.panel("10").input_b[-1].total > result.panel("11").input_b[-1].total
    assert (
        result.panel("01").input_a[-1].subthreshold
        > result.panel("00").input_a[-1].subthreshold
    )
    assert abs(result.panel("11").output[-1].total) > abs(
        result.panel("00").output[-1].total
    )
