"""Fig. 12 benchmark: circuit-level leakage estimation with loading effect.

This regenerates all three panels of Fig. 12 over the paper's circuit suite
(s838, s1196, s1423, s5372, s9378, s13207 as synthetic ISCAS-like stand-ins
plus the exact alu88 and mult88 designs).  The default configuration keeps
the harness interactive:

* synthetic circuits are generated at ``SCALE`` of their published gate count,
* ``VECTORS`` random vectors feed the loading-impact statistics (the paper
  uses 100),
* the transistor-level reference validation runs on ``REFERENCE_VECTORS``
  vectors of the circuits below ``REFERENCE_MAX_GATES`` gates, through the
  batched reference path (panel (a) default; the scalar oracle remains
  reachable via ``reference_engine="scalar"``).

EXPERIMENTS.md records the exact configuration behind every quoted number and
how to run the full-size campaign.
"""

from benchmarks.conftest import run_once
from repro.circuit.generators import paper_benchmark_suite
from repro.experiments.fig12 import run_fig12_circuit_estimation

SCALE = 0.12
VECTORS = 20
REFERENCE_VECTORS = 8
REFERENCE_MAX_GATES = 350


def test_fig12_circuit_estimation(benchmark, d25s, library_d25s):
    suite = paper_benchmark_suite(scale=SCALE)
    result = run_once(
        benchmark,
        run_fig12_circuit_estimation,
        suite,
        technology=d25s,
        library=library_d25s,
        vectors=VECTORS,
        reference_vectors=REFERENCE_VECTORS,
        reference_max_gates=REFERENCE_MAX_GATES,
        rng=0,
    )
    print()
    print(result.to_table())

    # Panel (a): wherever the reference ran, the estimator tracks it closely
    # (the paper reports close agreement between estimate and SPICE).
    validated = [e for e in result.entries if e.estimate_vs_reference_percent]
    assert validated, "at least one circuit must be validated against the reference"
    for entry in validated:
        assert abs(entry.estimate_vs_reference_percent["total"]) < 2.0

    # Panels (b)/(c): the loading effect raises the subthreshold component on
    # average, the maximum change exceeds the average, and the total moves
    # less than the subthreshold because components partially cancel.
    for entry in result.entries:
        average = entry.impact.average_percent
        maximum = entry.impact.maximum_percent
        assert average["subthreshold"] > 0
        assert maximum["subthreshold"] >= average["subthreshold"]
        assert average["total"] < average["subthreshold"]
