"""Sparse-Newton benchmark: SuperLU backend vs dense Newton at circuit scale.

The dense batched Newton solver factorizes a ``(B, N, N)`` Jacobian stack
per iteration — perfect for characterization-sized cells (N of tens), but
quadratic memory and cubic factorization cost in the free-node count N.
The sparse backend (:mod:`repro.spice.sparse`) assembles the same Jacobian
entries into one shared CSC pattern and runs SuperLU per column, so cost
scales with the number of *nonzeros* (a few device stamps per node).  This
benchmark pins the crossover claim on two synthetic ISCAS-like circuits
(:func:`repro.circuit.generators.iscas_like` integer scaling):

* a **medium** point (~1,300 free nodes) where dense still runs — sparse
  must beat it while agreeing to dense-parity tolerance, and
* a **large** point (>= 5,000 free nodes) where the dense Jacobian stack
  is memory-infeasible beyond a handful of batch columns — the recorded
  ``dense_infeasible_batch`` says where the pre-flight guard trips at the
  default 4 GB limit — and, where dense does still fit, at least
  ``MIN_SPEEDUP`` slower than the sparse backend.

Both points run the full end-to-end reference campaign (flatten, solve,
per-gate leakage aggregation), not a bare linear solve.  Acceptance bars:
every solve converged with zero Gauss-Seidel fallbacks, sparse vs dense
per-gate leakage within ``DENSE_PARITY_BOUND`` (the two backends solve the
same Newton steps to LAPACK-vs-SuperLU rounding), sparse vs the
Gauss-Seidel oracle within ``MAX_RELATIVE_ERROR``, results bitwise
independent of vector chunking, and ``method="auto"`` resolving to the
sparse backend wherever the free-node count crosses the default threshold.
The speedup floors can be lowered for smoke runs on small configurations
(the per-column SuperLU loop only amortizes at real circuit sizes); the
accuracy bars are never relaxed.

The numbers land in ``benchmarks/sparse_newton.json`` (override with
``SPARSE_BENCH_JSON``).  Smoke knobs: ``SPARSE_BENCH_MEDIUM_GATES``
(default 600), ``SPARSE_BENCH_LARGE_GATES`` (default 2400),
``SPARSE_BENCH_VECTORS`` (batch per point, default 2),
``SPARSE_BENCH_ORACLE_VECTORS`` (Gauss-Seidel oracle prefix, default 1),
``SPARSE_BENCH_MIN_SPEEDUP`` (large-point floor, default 5.0) and
``SPARSE_BENCH_MIN_MEDIUM_SPEEDUP`` (default 2.0).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.circuit.flatten import flatten_batch
from repro.circuit.generators import iscas_like
from repro.circuit.logic import random_vectors
from repro.core.reference import run_reference_campaign
from repro.spice.netlist import NodeKind
from repro.spice.newton import dense_jacobian_bytes, resolve_newton_method
from repro.spice.solver import SolverOptions

SEED = 3105
MEDIUM_GATES = int(os.environ.get("SPARSE_BENCH_MEDIUM_GATES", "600"))
LARGE_GATES = int(os.environ.get("SPARSE_BENCH_LARGE_GATES", "2400"))
VECTORS = int(os.environ.get("SPARSE_BENCH_VECTORS", "2"))
ORACLE_VECTORS = int(os.environ.get("SPARSE_BENCH_ORACLE_VECTORS", "1"))

#: Acceptance thresholds (see module docstring).  The speedup floors are
#: wall clock and can be lowered for smoke runs at reduced circuit sizes;
#: the two agreement bars are deterministic and never lowered.
MIN_SPEEDUP = float(os.environ.get("SPARSE_BENCH_MIN_SPEEDUP", "5.0"))
MIN_MEDIUM_SPEEDUP = float(
    os.environ.get("SPARSE_BENCH_MIN_MEDIUM_SPEEDUP", "2.0")
)
MAX_RELATIVE_ERROR = 1.0e-9
DENSE_PARITY_BOUND = 1.0e-12

#: Tight tolerances shared by every engine, matching the other solver
#: benchmarks: root-finder termination noise sits far below the bars.
_TIGHT = dict(voltage_tol=1e-11, xtol=1e-14, max_sweeps=250)
SPARSE = SolverOptions(method="newton-sparse", **_TIGHT)
DENSE = SolverOptions(method="newton", **_TIGHT)
GAUSS_SEIDEL = SolverOptions(method="gauss-seidel", **_TIGHT)


def _json_path() -> Path:
    override = os.environ.get("SPARSE_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "sparse_newton.json"


def _campaign(circuit, technology, vectors, options, chunk_size=64):
    start = time.perf_counter()
    result = run_reference_campaign(
        circuit,
        technology,
        vectors=vectors,
        solver_options=options,
        engine="batched",
        chunk_size=chunk_size,
    )
    return result, time.perf_counter() - start


def _breakdowns(result):
    return [
        {name: entry.breakdown.as_dict() for name, entry in report.per_gate.items()}
        for report in result.reports
    ]


def _worst_error(result_a, result_b):
    """Max per-gate per-component relative difference over paired reports."""
    worst = 0.0
    for report_a, report_b in zip(result_a.reports, result_b.reports):
        for name, entry_b in report_b.per_gate.items():
            entry_a = report_a.per_gate[name]
            for component in ("subthreshold", "gate", "btbt"):
                expected = entry_b.breakdown.component(component)
                observed = entry_a.breakdown.component(component)
                worst = max(
                    worst, abs(observed - expected) / max(abs(expected), 1e-30)
                )
    return worst


def _run_point(technology, n_gates, label):
    circuit = iscas_like(n_gates)
    vectors = list(random_vectors(circuit, VECTORS, rng=SEED))

    flattened = flatten_batch(circuit, technology, vectors)
    n_free = sum(
        1
        for node in flattened.netlist.nodes.values()
        if node.kind is NodeKind.FREE
    )

    sparse, sparse_s = _campaign(circuit, technology, vectors, SPARSE)
    dense, dense_s = _campaign(circuit, technology, vectors, DENSE)
    oracle_vectors = vectors[: max(1, ORACLE_VECTORS)]
    oracle, oracle_s = _campaign(circuit, technology, oracle_vectors, GAUSS_SEIDEL)

    for result in (sparse, dense, oracle):
        assert all(r.metadata["solver_converged"] for r in result.reports)
    assert all(r.metadata["solver_method"] == "newton-sparse" for r in sparse.reports)
    fallbacks = sum(1 for r in sparse.reports if r.metadata["solver_fallback"])
    assert fallbacks == 0, f"{label}: {fallbacks} Gauss-Seidel fallbacks"

    # Bitwise batch-composition invariance: per-column factorization means
    # re-chunking the sparse campaign reproduces every component exactly.
    rechunked, _ = _campaign(circuit, technology, vectors, SPARSE, chunk_size=1)
    chunk_invariant = _breakdowns(sparse) == _breakdowns(rechunked)
    assert chunk_invariant

    iterations = [int(r.metadata["newton_iterations"]) for r in sparse.reports]
    default_limit = SolverOptions().newton_dense_memory_limit
    per_column = dense_jacobian_bytes(1, n_free)
    return {
        "circuit": circuit.name,
        "gates": circuit.gate_count,
        "transistors": int(sparse.reports[0].metadata["transistors"]),
        "free_nodes": n_free,
        "vectors": len(vectors),
        "oracle_vectors": len(oracle_vectors),
        "sparse_seconds": sparse_s,
        "dense_seconds": dense_s,
        "gauss_seidel_seconds": oracle_s,
        "speedup_vs_dense": dense_s / sparse_s if sparse_s > 0 else float("nan"),
        "max_relative_error_vs_dense": _worst_error(sparse, dense),
        "max_relative_error_vs_oracle": _worst_error(sparse, oracle),
        "chunk_invariant": chunk_invariant,
        "auto_resolves_sparse": (
            resolve_newton_method(
                SolverOptions(method="auto"), n_free, len(vectors)
            )
            == "newton-sparse"
        ),
        "dense_gb_per_column": per_column / 1e9,
        # Smallest batch whose dense Jacobian stack trips the pre-flight
        # guard at the default memory limit (the dense-infeasible frontier).
        "dense_infeasible_batch": int(default_limit // per_column) + 1,
        "sparse_solver_stats": {
            "method": "newton-sparse",
            "iterations_mean": sum(iterations) / len(iterations),
            "iterations_max": max(iterations),
            "fallbacks": fallbacks,
        },
    }


def _run_points(technology):
    return (
        _run_point(technology, MEDIUM_GATES, "medium"),
        _run_point(technology, LARGE_GATES, "large"),
    )


def test_sparse_newton_scaling(benchmark, d25s):
    medium, large = run_once(benchmark, _run_points, d25s)

    record = {
        "seed": SEED,
        "solver_options": {
            "voltage_tol": SPARSE.voltage_tol,
            "xtol": SPARSE.xtol,
            "max_sweeps": SPARSE.max_sweeps,
            "newton_max_iterations": SPARSE.newton_max_iterations,
            "newton_sparse_threshold": SolverOptions().newton_sparse_threshold,
            "newton_dense_memory_limit": SolverOptions().newton_dense_memory_limit,
        },
        "min_speedup": MIN_SPEEDUP,
        "min_medium_speedup": MIN_MEDIUM_SPEEDUP,
        "max_relative_error_bar": MAX_RELATIVE_ERROR,
        "dense_parity_bar": DENSE_PARITY_BOUND,
        "medium": medium,
        "large": large,
    }
    path = _json_path()
    path.write_text(json.dumps(record, indent=2) + "\n")

    print()
    for label, point in (("medium", medium), ("large", large)):
        print(
            f"{label} ({point['circuit']}: {point['gates']} gates, "
            f"{point['free_nodes']} free nodes, {point['vectors']} vectors): "
            f"sparse {point['sparse_seconds']:.2f}s vs dense "
            f"{point['dense_seconds']:.2f}s -> "
            f"{point['speedup_vs_dense']:.1f}x, max rel err "
            f"{point['max_relative_error_vs_oracle']:.3e} vs oracle, "
            f"{point['max_relative_error_vs_dense']:.3e} vs dense, "
            f"{point['sparse_solver_stats']['iterations_mean']:.1f} mean "
            f"iterations, dense infeasible at batch >= "
            f"{point['dense_infeasible_batch']} ({path})"
        )

    for point in (medium, large):
        assert point["max_relative_error_vs_oracle"] <= MAX_RELATIVE_ERROR
        assert point["max_relative_error_vs_dense"] <= DENSE_PARITY_BOUND
        # Wherever the free-node count crosses the default threshold, the
        # "auto" policy must pick the sparse backend.
        if point["free_nodes"] >= SolverOptions().newton_sparse_threshold:
            assert point["auto_resolves_sparse"]
    assert medium["speedup_vs_dense"] >= MIN_MEDIUM_SPEEDUP
    assert large["speedup_vs_dense"] >= MIN_SPEEDUP
