"""Fig. 8 benchmark: loading effect across D25-S / D25-G / D25-JN devices."""

import numpy as np

from benchmarks.conftest import run_once
from repro.device.presets import DeviceVariant
from repro.experiments.fig08 import run_fig8_device_variants


def test_fig8_device_variants(benchmark):
    result = run_once(
        benchmark,
        run_fig8_device_variants,
        vector=(0,),
        loading_currents=tuple(np.linspace(0.0, 3.0e-6, 5)),
    )
    print()
    print(result.to_table())

    series = result.series
    # Paper Fig. 8: input loading strongest for the subthreshold-dominated
    # device, output loading strongest for the junction-dominated device,
    # and the gate-dominated device responds least overall.
    assert (
        series[DeviceVariant.D25_S].max_input_total()
        > series[DeviceVariant.D25_G].max_input_total()
    )
    assert (
        series[DeviceVariant.D25_JN].max_output_total()
        > series[DeviceVariant.D25_G].max_output_total()
    )
