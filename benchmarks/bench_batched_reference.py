"""Batched-reference benchmark: transistor-level Fig. 12a solves vs scalar.

The tentpole claim of the batched reference path is that the "SPICE" column
of Fig. 12(a) — full transistor-level solves of whole vector sets — rides
the batched SPICE layer: the circuit flattens once, every vector of a chunk
solves as one :class:`~repro.spice.batched.BatchedDcSolver` batch, and the
per-gate leakage of the whole chunk aggregates in one array pass, while
reproducing the scalar :class:`~repro.spice.solver.DcSolver` oracle's
numbers to well below 1e-9 relative error per leakage component.

Both engines run with tightened solver tolerances so root-finder
termination noise sits far below the agreement bar; the tolerances are
recorded in the JSON alongside the timings.

The benchmark runs the Fig. 12 smoke configuration (the synthetic suite at
the fig12 benchmark's scale); EXPERIMENTS.md records how to run full-size
campaigns.  Environment knobs: ``REFERENCE_BENCH_CIRCUITS`` (comma-separated
suite names, default ``s838``), ``REFERENCE_BENCH_SCALE`` (default 0.12, the
fig12 smoke scale), ``REFERENCE_BENCH_VECTORS`` (default 32),
``REFERENCE_BENCH_MIN_SPEEDUP`` (default 5.0; smoke runs on noisy shared
runners may lower it) and ``REFERENCE_BENCH_JSON`` (output path, default
``benchmarks/batched_reference.json``).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.conftest import run_once
from repro.circuit.generators import alu, array_multiplier, iscas_like
from repro.circuit.logic import random_vectors
from repro.core.reference import run_reference_campaign
from repro.core.report import REPORT_COMPONENTS
from repro.spice.solver import SolverOptions

SEED = 1205
SCALE = float(os.environ.get("REFERENCE_BENCH_SCALE", "0.12"))
VECTORS = int(os.environ.get("REFERENCE_BENCH_VECTORS", "64"))

#: Acceptance thresholds: the batched reference must run at least 5x faster
#: than the scalar oracle on the Fig. 12 smoke configuration while agreeing
#: to 1e-9 relative error on every leakage component of every gate of every
#: vector.  The agreement bar is deterministic; the speedup bar is
#: wall-clock and can be lowered for smoke runs on shared runners via
#: ``REFERENCE_BENCH_MIN_SPEEDUP`` (the full benchmark keeps the 5x default).
MIN_SPEEDUP = float(os.environ.get("REFERENCE_BENCH_MIN_SPEEDUP", "5.0"))
MAX_RELATIVE_ERROR = 1.0e-9

#: Tight solver settings shared by both engines (see module docstring).
TIGHT_SOLVER = SolverOptions(voltage_tol=1e-11, xtol=1e-14, max_sweeps=250)


def _circuits():
    names = os.environ.get("REFERENCE_BENCH_CIRCUITS", "s838").split(",")
    circuits = {}
    for name in (n.strip() for n in names):
        if name == "alu88":
            circuits[name] = alu(8)
        elif name == "mult88":
            circuits[name] = array_multiplier(8)
        else:
            circuits[name] = iscas_like(name, scale=SCALE)
    return circuits


def _json_path() -> Path:
    override = os.environ.get("REFERENCE_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "batched_reference.json"


def _max_relative_error(batched_reports, scalar_reports) -> float:
    """Max relative error over vectors, gates and leakage components."""
    worst = 0.0
    for report_b, report_s in zip(batched_reports, scalar_reports):
        for component in REPORT_COMPONENTS:
            observed = report_b.component(component)
            expected = report_s.component(component)
            worst = max(
                worst, abs(observed - expected) / max(abs(expected), 1e-30)
            )
        for gate_name, entry_s in report_s.per_gate.items():
            entry_b = report_b.per_gate[gate_name]
            for component in ("subthreshold", "gate", "btbt"):
                expected = entry_s.breakdown.component(component)
                observed = entry_b.breakdown.component(component)
                worst = max(
                    worst, abs(observed - expected) / max(abs(expected), 1e-30)
                )
    return worst


def _run_circuit(technology, circuit):
    vectors = list(random_vectors(circuit, VECTORS, rng=SEED))

    start = time.perf_counter()
    batched = run_reference_campaign(
        circuit,
        technology,
        vectors=vectors,
        solver_options=TIGHT_SOLVER,
        engine="batched",
    )
    batched_seconds = time.perf_counter() - start

    start = time.perf_counter()
    scalar = run_reference_campaign(
        circuit,
        technology,
        vectors=vectors,
        solver_options=TIGHT_SOLVER,
        engine="scalar",
    )
    scalar_seconds = time.perf_counter() - start

    assert all(r.metadata["solver_converged"] for r in batched.reports)
    assert all(r.metadata["solver_converged"] for r in scalar.reports)
    return {
        "gates": circuit.gate_count,
        "transistors": int(batched.reports[0].metadata["transistors"]),
        "vectors": len(vectors),
        "scalar_seconds": scalar_seconds,
        "batched_seconds": batched_seconds,
        "speedup": scalar_seconds / batched_seconds
        if batched_seconds > 0
        else float("nan"),
        "max_relative_error": _max_relative_error(
            batched.reports, scalar.reports
        ),
        # Convergence cost of each engine: iterations/sweeps per solve.
        "batched_solver": _solver_stats(batched.reports),
        "scalar_solver": _solver_stats(scalar.reports),
    }


def _solver_stats(reports) -> dict:
    """Aggregate per-solve iteration counts from campaign report metadata."""
    sweeps = [int(r.metadata["solver_sweeps"]) for r in reports]
    stats = {
        "method": reports[0].metadata["solver_method"],
        "iterations_mean": sum(sweeps) / len(sweeps),
        "iterations_max": max(sweeps),
    }
    if "solver_fallback" in reports[0].metadata:
        stats["fallbacks"] = sum(
            1 for r in reports if r.metadata["solver_fallback"]
        )
    return stats


def _run_workload(technology, circuits):
    return {name: _run_circuit(technology, circuit) for name, circuit in circuits.items()}


def test_batched_reference_speedup(benchmark, d25s):
    circuits = _circuits()
    per_circuit = run_once(benchmark, _run_workload, d25s, circuits)

    record = {
        "seed": SEED,
        "scale": SCALE,
        "solver_options": {
            "voltage_tol": TIGHT_SOLVER.voltage_tol,
            "xtol": TIGHT_SOLVER.xtol,
            "max_sweeps": TIGHT_SOLVER.max_sweeps,
            "method": TIGHT_SOLVER.method,
        },
        "min_speedup": MIN_SPEEDUP,
        "max_relative_error_bar": MAX_RELATIVE_ERROR,
        "circuits": per_circuit,
    }
    path = _json_path()
    path.write_text(json.dumps(record, indent=2) + "\n")

    print()
    for name, entry in per_circuit.items():
        print(
            f"{name} ({entry['gates']} gates, {entry['vectors']} vectors): "
            f"scalar {entry['scalar_seconds']:.2f}s vs batched "
            f"{entry['batched_seconds']:.2f}s -> {entry['speedup']:.1f}x, "
            f"max rel err {entry['max_relative_error']:.3e} ({path})"
        )

    for entry in per_circuit.values():
        assert entry["max_relative_error"] <= MAX_RELATIVE_ERROR
        assert entry["speedup"] >= MIN_SPEEDUP
