"""Newton-solver benchmark: damped Newton vs batched Gauss-Seidel vs scalar.

The tentpole claim of the Newton DC solver (:mod:`repro.spice.newton`) is
that it removes the last scalar-shaped cost of the reproduction: where the
batched Gauss-Seidel solver still pays tens-to-hundreds of relaxation
sweeps per solve (each a bracketed 1-D root find per free node), Newton
converges the full free-node system in ~5-15 damped iterations using
analytic device Jacobians and one batched ``np.linalg.solve`` per
iteration.  This benchmark pins that claim on the two DC-solve-bound
workloads:

* full-library characterization (every gate type, vector, pin and
  injection-grid point), and
* the s838 batched transistor-level reference campaign of Fig. 12(a);

each measured three ways — Newton-batched, Gauss-Seidel-batched (the
method oracle) and the scalar :class:`~repro.spice.solver.DcSolver` (the
accuracy oracle).  Alongside wall clock, the JSON records per-solve
iteration counts and fallback totals so the BENCH trajectory tracks
convergence *cost*.  Acceptance bars: Newton at least ``MIN_SPEEDUP``
faster than the batched Gauss-Seidel solver on both workloads, at most
1e-9 relative leakage error against the scalar oracle, every solve
converged (Gauss-Seidel fallback included), and reference results bitwise
independent of how the vector set is chunked into batches.

The numbers land in ``benchmarks/newton_solver.json`` (override with
``NEWTON_BENCH_JSON``).  Smoke knobs: ``NEWTON_BENCH_GATES``
(comma-separated gate types, default: the full library),
``NEWTON_BENCH_VECTORS`` (default 64), ``NEWTON_BENCH_CIRCUIT`` (default
``s838``), ``NEWTON_BENCH_SCALE`` (default 0.12, the fig12 smoke scale)
and ``NEWTON_BENCH_MIN_SPEEDUP`` (default 3.0).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from benchmarks.bench_batched_solver import _characterization_error
from benchmarks.conftest import run_once
from repro.circuit.generators import iscas_like
from repro.circuit.logic import random_vectors
from repro.core.reference import run_reference_campaign
from repro.gates.characterize import CharacterizationOptions, GateLibrary
from repro.gates.library import GateType
from repro.spice.solver import SolverOptions

SEED = 2605
VECTORS = int(os.environ.get("NEWTON_BENCH_VECTORS", "64"))
CIRCUIT = os.environ.get("NEWTON_BENCH_CIRCUIT", "s838")
SCALE = float(os.environ.get("NEWTON_BENCH_SCALE", "0.12"))

#: Acceptance thresholds (see module docstring).  The speedup bar is wall
#: clock and can be lowered for smoke runs on noisy shared runners; the
#: agreement bar is deterministic and never lowered.
MIN_SPEEDUP = float(os.environ.get("NEWTON_BENCH_MIN_SPEEDUP", "3.0"))
MAX_RELATIVE_ERROR = 1.0e-9

#: Tight tolerances shared by every engine, matching the other solver
#: benchmarks: root-finder termination noise sits far below the bar.
_TIGHT = dict(voltage_tol=1e-11, xtol=1e-14, max_sweeps=250)
NEWTON = SolverOptions(method="newton", **_TIGHT)
GAUSS_SEIDEL = SolverOptions(method="gauss-seidel", **_TIGHT)


def _gate_types() -> list[GateType]:
    names = os.environ.get("NEWTON_BENCH_GATES")
    if not names:
        return list(GateType)
    return [GateType.from_name(name.strip()) for name in names.split(",")]


def _json_path() -> Path:
    override = os.environ.get("NEWTON_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "newton_solver.json"


def _characterize(technology, gate_types, solver, engine="batched"):
    # on_nonconverged="raise": a silently non-converged cell would corrupt
    # the agreement measurement, so the benchmark fails loudly instead.
    library = GateLibrary(
        technology,
        options=CharacterizationOptions(
            engine=engine, solver=solver, on_nonconverged="raise"
        ),
    )
    start = time.perf_counter()
    library.precharacterize(gate_types)
    elapsed = time.perf_counter() - start
    return library, elapsed


def _run_characterization(technology, gate_types):
    newton, newton_s = _characterize(technology, gate_types, NEWTON)
    relaxed, relaxed_s = _characterize(technology, gate_types, GAUSS_SEIDEL)
    scalar, scalar_s = _characterize(
        technology, gate_types, GAUSS_SEIDEL, engine="scalar"
    )
    stats = newton.characterizer.solve_stats
    return {
        "gate_types": [gate_type.value for gate_type in gate_types],
        "records": len(newton.cached_records()),
        "newton_seconds": newton_s,
        "gauss_seidel_seconds": relaxed_s,
        "scalar_seconds": scalar_s,
        "speedup_vs_gauss_seidel": relaxed_s / newton_s if newton_s > 0 else float("nan"),
        "speedup_vs_scalar": scalar_s / newton_s if newton_s > 0 else float("nan"),
        "max_relative_error_vs_scalar": _characterization_error(newton, scalar),
        "newton_solver_stats": stats,
        "gauss_seidel_solver_stats": relaxed.characterizer.solve_stats,
    }


def _campaign_breakdowns(result):
    return [
        {
            name: entry.breakdown.as_dict()
            for name, entry in report.per_gate.items()
        }
        for report in result.reports
    ]


def _run_reference(technology, circuit):
    vectors = list(random_vectors(circuit, VECTORS, rng=SEED))

    start = time.perf_counter()
    newton = run_reference_campaign(
        circuit, technology, vectors=vectors, solver_options=NEWTON,
        engine="batched",
    )
    newton_s = time.perf_counter() - start

    start = time.perf_counter()
    relaxed = run_reference_campaign(
        circuit, technology, vectors=vectors, solver_options=GAUSS_SEIDEL,
        engine="batched",
    )
    relaxed_s = time.perf_counter() - start

    start = time.perf_counter()
    scalar = run_reference_campaign(
        circuit, technology, vectors=vectors, solver_options=GAUSS_SEIDEL,
        engine="scalar",
    )
    scalar_s = time.perf_counter() - start

    # Every vector of the suite circuit must converge, fallback included.
    assert all(r.metadata["solver_converged"] for r in newton.reports)
    assert all(r.metadata["solver_converged"] for r in scalar.reports)

    # Bitwise batch-composition invariance: re-chunking the Newton campaign
    # must reproduce every per-gate component exactly.
    rechunked = run_reference_campaign(
        circuit, technology, vectors=vectors, solver_options=NEWTON,
        engine="batched", chunk_size=17,
    )
    chunk_invariant = _campaign_breakdowns(newton) == _campaign_breakdowns(
        rechunked
    )
    assert chunk_invariant

    worst = 0.0
    for report_n, report_s in zip(newton.reports, scalar.reports):
        for name, entry_s in report_s.per_gate.items():
            entry_n = report_n.per_gate[name]
            for component in ("subthreshold", "gate", "btbt"):
                expected = entry_s.breakdown.component(component)
                observed = entry_n.breakdown.component(component)
                worst = max(
                    worst, abs(observed - expected) / max(abs(expected), 1e-30)
                )

    iterations = [
        int(r.metadata["newton_iterations"]) for r in newton.reports
    ]
    fallbacks = sum(1 for r in newton.reports if r.metadata["solver_fallback"])
    relaxed_sweeps = [
        int(r.metadata["solver_sweeps"]) for r in relaxed.reports
    ]
    return {
        "circuit": circuit.name,
        "gates": circuit.gate_count,
        "transistors": int(newton.reports[0].metadata["transistors"]),
        "vectors": len(vectors),
        "newton_seconds": newton_s,
        "gauss_seidel_seconds": relaxed_s,
        "scalar_seconds": scalar_s,
        "speedup_vs_gauss_seidel": relaxed_s / newton_s if newton_s > 0 else float("nan"),
        "speedup_vs_scalar": scalar_s / newton_s if newton_s > 0 else float("nan"),
        "max_relative_error_vs_scalar": worst,
        "chunk_invariant": chunk_invariant,
        "newton_solver_stats": {
            "method": "newton",
            "iterations_mean": sum(iterations) / len(iterations),
            "iterations_max": max(iterations),
            "fallbacks": fallbacks,
        },
        "gauss_seidel_solver_stats": {
            "method": "gauss-seidel",
            "iterations_mean": sum(relaxed_sweeps) / len(relaxed_sweeps),
            "iterations_max": max(relaxed_sweeps),
        },
    }


def _run_workloads(technology, gate_types, circuit):
    return (
        _run_characterization(technology, gate_types),
        _run_reference(technology, circuit),
    )


def test_newton_solver_speedup(benchmark, d25s):
    gate_types = _gate_types()
    circuit = iscas_like(CIRCUIT, scale=SCALE)
    characterization, reference = run_once(
        benchmark, _run_workloads, d25s, gate_types, circuit
    )

    record = {
        "seed": SEED,
        "solver_options": {
            "voltage_tol": NEWTON.voltage_tol,
            "xtol": NEWTON.xtol,
            "max_sweeps": NEWTON.max_sweeps,
            "newton_max_iterations": NEWTON.newton_max_iterations,
            "newton_backtracks": NEWTON.newton_backtracks,
            "newton_step_limit": NEWTON.newton_step_limit,
        },
        "min_speedup": MIN_SPEEDUP,
        "max_relative_error_bar": MAX_RELATIVE_ERROR,
        "characterization": characterization,
        "reference": reference,
    }
    path = _json_path()
    path.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(
        f"characterization ({characterization['records']} records): "
        f"newton {characterization['newton_seconds']:.2f}s vs gauss-seidel "
        f"{characterization['gauss_seidel_seconds']:.2f}s -> "
        f"{characterization['speedup_vs_gauss_seidel']:.1f}x, max rel err "
        f"{characterization['max_relative_error_vs_scalar']:.3e} vs scalar"
    )
    print(
        f"reference ({reference['circuit']}, {reference['vectors']} vectors): "
        f"newton {reference['newton_seconds']:.2f}s vs gauss-seidel "
        f"{reference['gauss_seidel_seconds']:.2f}s -> "
        f"{reference['speedup_vs_gauss_seidel']:.1f}x, max rel err "
        f"{reference['max_relative_error_vs_scalar']:.3e} vs scalar, "
        f"{reference['newton_solver_stats']['iterations_mean']:.1f} mean "
        f"iterations, {reference['newton_solver_stats']['fallbacks']} "
        f"fallbacks ({path})"
    )

    for entry in (characterization, reference):
        assert entry["max_relative_error_vs_scalar"] <= MAX_RELATIVE_ERROR
        assert entry["speedup_vs_gauss_seidel"] >= MIN_SPEEDUP
