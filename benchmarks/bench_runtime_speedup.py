"""Runtime benchmark: loading-aware estimation vs. transistor-level reference.

The paper reports a ~1000x speed-up of the Fig. 13 algorithm over SPICE.  The
reference here is the pure-Python relaxation solver, so the absolute ratio
differs from HSPICE-vs-C, but the shape — orders of magnitude, growing with
circuit size — is what this benchmark checks and records.
"""

from benchmarks.conftest import run_once
from repro.circuit.generators import iscas_like
from repro.experiments.runtime import run_runtime_comparison

SCALE = 0.3
VECTORS = 2


def test_runtime_speedup(benchmark, d25s, library_d25s):
    circuit = iscas_like("s838", scale=SCALE)
    result = run_once(
        benchmark,
        run_runtime_comparison,
        circuit,
        technology=d25s,
        library=library_d25s,
        vectors=VECTORS,
        rng=0,
    )
    print()
    print(result.to_table())

    # The estimator must be at least two orders of magnitude faster than the
    # transistor-level solve even on this reduced circuit; the gap widens
    # with circuit size.
    assert result.speedup > 100.0
    # The batched engine sits on top of the same LUTs, so its lead over the
    # reference can only be larger still.
    assert result.reference_vs_batched > 100.0
