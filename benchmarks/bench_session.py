"""Serving benchmark: a long-lived EstimationSession vs. cold per-call setup.

The service layer's claim is operational, not numerical: a long-lived
:class:`repro.service.EstimationSession` — compiled circuit cached, library
registered, concurrent point queries coalesced into shared engine passes —
answers repeated vector-estimation queries at a throughput the stateless
per-call path cannot approach, while returning **bitwise identical**
totals.  The two sides measured on the same circuit and query shape:

* **warm**: one session, warmed once (library + compile), then ``THREADS``
  workers each issuing sequential small queries through the coalescing
  front-end — the serving usage the layer was built for;
* **cold**: the per-call counterfactual — every query constructs a fresh
  session, loads the characterized library from the on-disk
  :class:`~repro.gates.cache.LibraryStore` (the realistic stateless-worker
  setup; re-characterizing from scratch would be seconds per call), compiles
  the circuit fresh, and only then evaluates.

Characterization itself is paid once, outside both timed regions, and
published to the store both sides read — the cold side is charged the
per-call *setup* (library load + compile), never the one-time solve.

Records ``benchmarks/session.json`` (override with ``SESSION_BENCH_JSON``)
for CI to archive.  Environment knobs for smoke runs:
``SESSION_BENCH_SCALE``, ``SESSION_BENCH_VECTORS`` (vectors per query),
``SESSION_BENCH_QUERIES`` (warm queries per thread),
``SESSION_BENCH_THREADS``, ``SESSION_BENCH_COLD_QUERIES`` and
``SESSION_BENCH_MIN_SPEEDUP`` (smoke machines are noisy; the bitwise bars
are never relaxed).
"""

from __future__ import annotations

import json
import os
import threading
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import run_once
from repro.circuit.generators import iscas_like
from repro.engine.campaign import run_totals
from repro.service import EstimationSession

CIRCUIT = "s838"
SCALE = float(os.environ.get("SESSION_BENCH_SCALE", "1.0"))
VECTORS_PER_QUERY = int(os.environ.get("SESSION_BENCH_VECTORS", "1"))
QUERIES_PER_THREAD = int(os.environ.get("SESSION_BENCH_QUERIES", "16"))
THREADS = int(os.environ.get("SESSION_BENCH_THREADS", "8"))
COLD_QUERIES = int(os.environ.get("SESSION_BENCH_COLD_QUERIES", "12"))
SEED = 2005

#: Acceptance floor: warm serving throughput must beat the cold per-call
#: path by at least this factor at the default configuration.  Smoke runs
#: may lower it (fewer queries, noisier machines); the bitwise-identity
#: bars below are never relaxed.
MIN_SPEEDUP = float(os.environ.get("SESSION_BENCH_MIN_SPEEDUP", "10.0"))


def _json_path() -> Path:
    override = os.environ.get("SESSION_BENCH_JSON")
    if override:
        return Path(override)
    return Path(__file__).resolve().parent / "session.json"


def _warm_side(session, circuit, library, queries):
    """Serve every query through the shared session from worker threads.

    Worker ``i`` owns queries ``i, i+THREADS, i+2*THREADS, ...`` and issues
    them sequentially, so concurrent submissions from different workers
    coalesce into shared engine passes.  Returns (results, seconds).
    """
    results: list[np.ndarray | None] = [None] * len(queries)
    barrier = threading.Barrier(THREADS)

    def worker(worker_index: int) -> None:
        barrier.wait()
        for q in range(worker_index, len(queries), THREADS):
            results[q] = session.totals(circuit, library, queries[q])

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(THREADS)]
    start = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results, time.perf_counter() - start


def _cold_side(technology, circuit, store_dir, queries):
    """Answer each query the stateless way: fresh session, load, compile."""
    results = []
    start = time.perf_counter()
    for bits in queries:
        session = EstimationSession(store=store_dir)
        library = session.library(technology)
        results.append(session.totals(circuit, library, bits, coalesce=False))
    return results, time.perf_counter() - start


def test_session_serving_throughput(benchmark, d25s, library_d25s, tmp_path):
    circuit = iscas_like(CIRCUIT, scale=SCALE)
    rng = np.random.default_rng(SEED)
    n_pi = len(circuit.primary_inputs)
    n_warm = THREADS * QUERIES_PER_THREAD
    queries = [
        rng.integers(0, 2, size=(n_pi, VECTORS_PER_QUERY), dtype=np.uint8)
        for _ in range(max(n_warm, COLD_QUERIES))
    ]

    # One-time setup outside both timed regions: characterize + compile via
    # the warm session, publish the records for the cold side to load.
    session = EstimationSession(store=tmp_path)
    session.register_library(library_d25s)
    start = time.perf_counter()
    session.warm_up([circuit], library_d25s)
    warmup_seconds = time.perf_counter() - start
    assert session.store.path_for(library_d25s).exists()

    (warm_results, warm_seconds), (cold_results, cold_seconds) = run_once(
        benchmark,
        lambda: (
            _warm_side(session, circuit, library_d25s, queries[:n_warm]),
            _cold_side(d25s, circuit, tmp_path, queries[:COLD_QUERIES]),
        ),
    )

    # Bitwise bars: both sides must reproduce standalone serial evaluation
    # exactly, whatever batches the coalescer formed.
    compiled = session.compiled(circuit, library_d25s)
    oracle = [run_totals(compiled, bits) for bits in queries]
    warm_identical = all(
        np.array_equal(got, want) for got, want in zip(warm_results, oracle)
    )
    cold_identical = all(
        np.array_equal(got, want) for got, want in zip(cold_results, oracle)
    )

    warm_qps = n_warm / warm_seconds if warm_seconds > 0 else float("nan")
    cold_qps = COLD_QUERIES / cold_seconds if cold_seconds > 0 else float("nan")
    speedup = warm_qps / cold_qps if cold_qps > 0 else float("nan")

    stats = session.stats()
    coalescer = stats["coalescer"]
    record = {
        "circuit": CIRCUIT,
        "scale": SCALE,
        "gates": circuit.gate_count,
        "seed": SEED,
        "vectors_per_query": VECTORS_PER_QUERY,
        "warmup_seconds": warmup_seconds,
        "warm": {
            "threads": THREADS,
            "queries": n_warm,
            "seconds": warm_seconds,
            "queries_per_second": warm_qps,
            "bitwise_identical": warm_identical,
        },
        "cold": {
            "queries": COLD_QUERIES,
            "seconds": cold_seconds,
            "queries_per_second": cold_qps,
            "bitwise_identical": cold_identical,
        },
        "speedup": speedup,
        "coalescing": {
            "requests": coalescer["requests"],
            "request_vectors": coalescer["request_vectors"],
            "batches": coalescer["batches"],
            "batched_vectors": coalescer["batched_vectors"],
            "coalesced_requests": coalescer["coalesced_requests"],
            "max_batch_requests": coalescer["max_batch_requests"],
        },
        "compile_cache": {
            "hits": stats["compile_cache"]["hits"],
            "misses": stats["compile_cache"]["misses"],
        },
    }
    path = _json_path()
    path.write_text(json.dumps(record, indent=2) + "\n")

    print()
    print(
        f"warm {warm_qps:.0f} q/s ({THREADS} threads) vs cold "
        f"{cold_qps:.0f} q/s -> {speedup:.1f}x; "
        f"{coalescer['requests']} requests in {coalescer['batches']} "
        f"batch(es) ({path})"
    )

    assert warm_identical, "warm session totals differ from serial evaluation"
    assert cold_identical, "cold path totals differ from serial evaluation"
    assert coalescer["request_vectors"] == coalescer["batched_vectors"]
    assert coalescer["requests"] == n_warm
    assert stats["compile_cache"]["misses"] == 1  # the warm-up compile only
    assert speedup >= MIN_SPEEDUP
